// Host GEMM engine bench: times the fast engines — blocked panel-packed
// (tensor/gemm_blocked.h) and runtime-dispatched SIMD (tensor/gemm_simd.h)
// — against the reference triple loop on the linear GEMM shapes of a
// ViT-Base encoder layer, for both the int32 accumulator path and f32.
// Every row also verifies bit-identity (max|diff| must be 0 — the fast
// engines are faster spellings of the same arithmetic, not
// approximations).
//
//   host_gemm [--shapes=fc1,fc2,...] [--engines=blocked,simd] [--repeats=5]
//             [--seed=42] [--threads=N] [--csv] [--json=PATH]
//
// --json writes a schema-versioned run report (gemm_points section,
// schema minor 6). GFLOP/s, speedup, and the simd level column are
// machine-dependent; everything else in the report is deterministic for a
// given seed, at every thread count and every VITBIT_SIMD_LEVEL — which
// is what lets CI byte-diff stripped reports across --threads values and
// SIMD tiers.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/cli.h"
#include "tensor/gemm_blocked.h"
#include "tensor/gemm_timing.h"
#include "tensor/simd_level.h"

namespace vitbit {
namespace {

std::vector<GemmShapeSpec> select_shapes(const Cli& cli) {
  std::vector<GemmShapeSpec> all;
  for (const auto& [name, s] : bench::vit_gemm_shapes(nn::vit_base()))
    all.push_back({name, s.m, s.k, s.n});
  const std::string filter = cli.get("shapes", "");
  if (filter.empty()) return all;
  std::vector<GemmShapeSpec> out;
  for (const auto& s : all)
    if (("," + filter + ",").find("," + s.name + ",") != std::string::npos)
      out.push_back(s);
  VITBIT_CHECK_MSG(!out.empty(),
                   "--shapes=" << filter << " matched no ViT-Base GEMM");
  return out;
}

std::vector<GemmEngine> select_engines(const Cli& cli) {
  const std::string spec = cli.get("engines", "blocked,simd");
  std::vector<GemmEngine> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string name =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                    : comma - pos);
    if (!name.empty()) out.push_back(gemm_engine_from_string(name));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  VITBIT_CHECK_MSG(!out.empty(), "--engines selected no engine (valid: "
                                     << gemm_engine_names() << ")");
  return out;
}

// The simd-level column: what the simd engine actually dispatched to;
// other engines never consult the SIMD tier.
std::string engine_simd_level(GemmEngine engine) {
  return engine == GemmEngine::kSimd ? simd_level_name(active_simd_level())
                                     : "";
}

report::GemmPointReport make_point(const GemmShapeSpec& shape,
                                   const std::string& dtype,
                                   GemmEngine engine, int repeats,
                                   const GemmMeasurement& m) {
  report::GemmPointReport p;
  p.name = shape.name;
  p.dtype = dtype;
  p.engine = gemm_engine_name(engine);
  p.simd_level = engine_simd_level(engine);
  p.m = shape.m;
  p.k = shape.k;
  p.n = shape.n;
  p.repeats = repeats;
  p.gflops = m.engine_gflops;
  p.ref_gflops = m.ref_gflops;
  p.speedup = m.speedup;
  p.max_abs_diff = m.max_abs_diff;
  return p;
}

int run(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  const Cli cli(argc, argv);
  auto pool = bench::make_pool(cli);
  const auto shapes = select_shapes(cli);
  const auto engines = select_engines(cli);
  const int repeats = static_cast<int>(cli.get_int("repeats", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string json = cli.json_path();
  const bool csv = cli.get_bool("csv", false);
  if (const auto typos = cli.unused(); !typos.empty()) {
    std::cerr << "host_gemm: unknown flag --" << typos.front() << "\n";
    return 2;
  }

  Table t("host GEMM: " + std::to_string(kGemmMr) + "x" +
          std::to_string(kGemmNr) + " engines vs reference (best of " +
          std::to_string(repeats) + ", " + std::to_string(pool.size()) +
          " thread(s), simd level " +
          simd_level_name(active_simd_level()) + ")");
  t.header({"shape", "dtype", "engine", "simd", "M", "K", "N",
            "ref GFLOP/s", "eng GFLOP/s", "speedup", "max|diff|"});
  std::vector<report::GemmPointReport> points;
  for (const auto& shape : shapes) {
    for (const GemmEngine engine : engines) {
      const auto mi = measure_gemm_int(shape, repeats, seed, &pool, engine);
      const auto mf = measure_gemm_f32(shape, repeats, seed, &pool, engine);
      for (const auto& [dtype, m] :
           {std::pair<const char*, const GemmMeasurement&>{"int32", mi},
            {"f32", mf}}) {
        t.row()
            .cell(shape.name)
            .cell(dtype)
            .cell(gemm_engine_name(engine))
            .cell(engine_simd_level(engine))
            .cell(shape.m)
            .cell(shape.k)
            .cell(shape.n)
            .cell(m.ref_gflops, 2)
            .cell(m.engine_gflops, 2)
            .cell(m.speedup, 2)
            .cell(m.max_abs_diff, 0);
        points.push_back(make_point(shape, dtype, engine, repeats, m));
      }
    }
  }
  if (csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);

  // Every row must show max|diff| = 0 for int paths and stay within the
  // engines' contract for f32 (also exact, see gemm_simd.h): the fast
  // engines promise bit-identity with the reference, not "close enough".
  // Fail the bench loudly if timing ever races ahead of correctness.
  for (const auto& p : points)
    VITBIT_CHECK_MSG(p.max_abs_diff == 0.0,
                     p.engine << " engine diverged from reference on "
                              << p.key()
                              << ": max|diff|=" << p.max_abs_diff);

  if (!json.empty()) {
    report::RunReport rep;
    rep.tool = "host_gemm";
    rep.meta = report::build_metadata();
    rep.meta["model"] = "vit";
    rep.meta["seed"] = std::to_string(seed);
    rep.threads = pool.size();
    rep.gemm_points = std::move(points);
    rep.host_wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    report::save_report_file(json, rep);
  }
  return 0;
}

}  // namespace
}  // namespace vitbit

int main(int argc, char** argv) {
  return vitbit::bench::guarded_main(argc, argv, vitbit::run);
}
