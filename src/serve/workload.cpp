#include "serve/workload.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace vitbit::serve {

namespace {

std::uint64_t to_us(double seconds) {
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

}  // namespace

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kUniform:
      return "uniform";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "?";
}

ArrivalKind arrival_kind_from_name(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "uniform") return ArrivalKind::kUniform;
  if (name == "bursty") return ArrivalKind::kBursty;
  VITBIT_CHECK_MSG(false, "unknown arrival kind: " << name
                                                   << " (want poisson|uniform|"
                                                      "bursty)");
  return ArrivalKind::kPoisson;
}

std::vector<Request> generate_workload(const WorkloadConfig& cfg) {
  VITBIT_CHECK_MSG(cfg.rate_rps > 0.0, "workload rate must be > 0");
  VITBIT_CHECK_MSG(cfg.duration_s > 0.0, "workload duration must be > 0");
  Rng rng(cfg.seed);
  std::vector<Request> out;
  auto emit = [&](double t) {
    out.push_back({static_cast<std::uint64_t>(out.size()), to_us(t)});
  };

  switch (cfg.kind) {
    case ArrivalKind::kPoisson: {
      double t = rng.exp_double(cfg.rate_rps);
      while (t < cfg.duration_s) {
        emit(t);
        t += rng.exp_double(cfg.rate_rps);
      }
      break;
    }
    case ArrivalKind::kUniform: {
      const double mean = 1.0 / cfg.rate_rps;
      double t = rng.uniform(0.5 * mean, 1.5 * mean);
      while (t < cfg.duration_s) {
        emit(t);
        t += rng.uniform(0.5 * mean, 1.5 * mean);
      }
      break;
    }
    case ArrivalKind::kBursty: {
      VITBIT_CHECK_MSG(cfg.burst_on_s > 0.0 && cfg.burst_off_s > 0.0,
                       "bursty phase means must be > 0");
      // Scale the on-phase rate so the duty-cycled average is rate_rps.
      const double on_rate = cfg.rate_rps *
                             (cfg.burst_on_s + cfg.burst_off_s) /
                             cfg.burst_on_s;
      double now = 0.0;
      bool on = true;
      double phase_end = rng.exp_double(1.0 / cfg.burst_on_s);
      while (now < cfg.duration_s) {
        if (!on) {
          now = phase_end;
          on = true;
          phase_end = now + rng.exp_double(1.0 / cfg.burst_on_s);
          continue;
        }
        const double dt = rng.exp_double(on_rate);
        // The candidate past the phase boundary is discarded, which is
        // exact for exponential inter-arrivals (memorylessness).
        if (now + dt > phase_end) {
          now = phase_end;
          on = false;
          phase_end = now + rng.exp_double(1.0 / cfg.burst_off_s);
          continue;
        }
        now += dt;
        if (now < cfg.duration_s) emit(now);
      }
      break;
    }
  }
  return out;
}

}  // namespace vitbit::serve
