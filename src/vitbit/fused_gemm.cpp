#include "vitbit/fused_gemm.h"

#include <cmath>

#include "common/check.h"
#include "tensor/gemm_dispatch.h"

namespace vitbit::core {

MatrixI32 vitbit_gemm(const PreprocessedWeights& weights,
                      const PreprocessedInput& input,
                      const swar::PackedGemmOptions& packed_options,
                      FusedGemmStats* stats) {
  const MatrixI32& a1 = weights.a1;
  const int m = a1.rows();
  const int k = a1.cols();
  const int n1 = input.widths.n1, n2 = input.widths.n2, n3 = input.widths.n3;
  VITBIT_CHECK(input.b1.rows() == k || n1 == 0);
  VITBIT_CHECK(input.b2.rows() == k || n2 == 0);
  VITBIT_CHECK(input.b3.rows() == k || n3 == 0);
  VITBIT_CHECK(weights.a2.rows() == m && weights.a2.cols() == k);

  MatrixI32 c(m, n1 + n2 + n3);
  FusedGemmStats local{};

  // INT-core slice: packed SWAR GEMM (warp role: INT_GEMM(A1, B1)).
  if (n1 > 0) {
    const MatrixI32 c1 =
        swar::gemm_packed(a1, input.b1, packed_options, &local.packed);
    for (int r = 0; r < m; ++r)
      for (int col = 0; col < n1; ++col) c.at(r, col) = c1.at(r, col);
  }

  // FP-core slice: float GEMM on converted operands (FP_GEMM(A2, B2)),
  // exact as long as partial sums stay below 2^24.
  if (n2 > 0) {
    double max_a = 0, max_b = 0;
    for (const auto v : weights.a2.flat())
      max_a = std::max(max_a, std::abs(static_cast<double>(v)));
    for (const auto v : input.b2.flat())
      max_b = std::max(max_b, std::abs(static_cast<double>(v)));
    VITBIT_CHECK_MSG(max_a * max_b * k < 16777216.0,
                     "FP slice would exceed exact fp32 integer range: K="
                         << k << " max|a|=" << max_a << " max|b|=" << max_b);
    // Dispatched float GEMM; exact under the bound just checked, so it
    // yields the same integers the FFMA accumulation chain would.
    const MatrixF32 c2 =
        gemm_f32(convert<float>(weights.a2), convert<float>(input.b2));
    for (int r = 0; r < m; ++r) {
      for (int col = 0; col < n2; ++col) {
        const auto v =
            static_cast<std::int64_t>(std::llround(c2.at(r, col)));
        VITBIT_CHECK(v >= INT32_MIN && v <= INT32_MAX);
        c.at(r, n1 + col) = static_cast<std::int32_t>(v);
        local.fp_macs += k;
      }
    }
  }

  // Tensor-core slice: zero-masked integer MMA (TC_GEMM(A1, B3)).
  if (n3 > 0) {
    const MatrixI32 c3 = gemm_int(a1, input.b3);
    for (int r = 0; r < m; ++r)
      for (int col = 0; col < n3; ++col) c.at(r, n1 + n2 + col) = c3.at(r, col);
    local.tensor_macs = static_cast<std::int64_t>(m) * k * n3;
  }

  if (stats) *stats = local;
  return c;
}

}  // namespace vitbit::core
