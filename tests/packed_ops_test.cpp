#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "swar/packed_ops.h"

namespace vitbit::swar {
namespace {

class PackedOps : public ::testing::TestWithParam<std::tuple<int, LaneMode>> {
 protected:
  LaneLayout layout() const {
    return paper_policy_layout(std::get<0>(GetParam()),
                               std::get<1>(GetParam()));
  }
};

TEST_P(PackedOps, ArrayRoundTrip) {
  const auto l = layout();
  Rng rng(1);
  std::vector<std::int32_t> vals(101);  // deliberately not a lane multiple
  for (auto& v : vals)
    v = static_cast<std::int32_t>(rng.range(l.value_min(), l.value_max()));
  auto words = pack_array(vals, l);
  EXPECT_EQ(words.size(),
            (vals.size() + static_cast<std::size_t>(l.num_lanes) - 1) /
                static_cast<std::size_t>(l.num_lanes));
  EXPECT_EQ(unpack_array(words, l, vals.size()), vals);
}

TEST_P(PackedOps, ReluMatchesScalar) {
  const auto l = layout();
  Rng rng(2);
  std::vector<std::int32_t> vals(96);
  for (auto& v : vals)
    v = static_cast<std::int32_t>(rng.range(l.value_min(), l.value_max()));
  auto words = pack_array(vals, l);
  packed_relu(words, l);
  const auto got = unpack_array(words, l, vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i)
    EXPECT_EQ(got[i], std::max(vals[i], 0)) << i;
}

TEST_P(PackedOps, RequantShiftMatchesScalar) {
  const auto l = layout();
  Rng rng(3);
  std::vector<std::int32_t> vals(96);
  for (auto& v : vals)
    v = static_cast<std::int32_t>(rng.range(l.value_min(), l.value_max()));
  for (const int shift : {0, 1, 3}) {
    auto words = pack_array(vals, l);
    packed_requant_shift(words, shift, l);
    const auto got = unpack_array(words, l, vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i) {
      std::int64_t want = vals[i];
      if (shift > 0) {
        const std::int64_t half = std::int64_t{1} << (shift - 1);
        want = want >= 0 ? (want + half) >> shift
                         : -((-want + half) >> shift);
      }
      want = std::clamp<std::int64_t>(want, l.value_min(), l.value_max());
      EXPECT_EQ(got[i], want) << "i=" << i << " shift=" << shift;
    }
  }
}

TEST_P(PackedOps, AddSaturates) {
  const auto l = layout();
  Rng rng(4);
  std::vector<std::int32_t> va(64), vb(64);
  for (auto& v : va)
    v = static_cast<std::int32_t>(rng.range(l.value_min(), l.value_max()));
  for (auto& v : vb)
    v = static_cast<std::int32_t>(rng.range(l.value_min(), l.value_max()));
  const auto wa = pack_array(va, l);
  const auto wb = pack_array(vb, l);
  std::vector<std::uint32_t> out(wa.size());
  packed_add_saturate(out, wa, wb, l);
  const auto got = unpack_array(out, l, va.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    const auto want = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(va[i]) + vb[i], l.value_min(),
        l.value_max());
    EXPECT_EQ(got[i], want) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitwidthsAndModes, PackedOps,
    ::testing::Combine(::testing::Values(4, 5, 8),
                       ::testing::Values(LaneMode::kUnsigned, LaneMode::kOffset,
                                         LaneMode::kTopSigned)));

TEST(PackedOpsEdge, EmptyArray) {
  const auto l = paper_policy_layout(8);
  const std::vector<std::int32_t> vals;
  auto words = pack_array(vals, l);
  EXPECT_TRUE(words.empty());
  packed_relu(words, l);
  EXPECT_TRUE(unpack_array(words, l, 0).empty());
}

TEST(PackedOpsEdge, UnpackBeyondWordsThrows) {
  const auto l = paper_policy_layout(8);
  const std::vector<std::uint32_t> words(2);
  EXPECT_THROW(unpack_array(words, l, 5), CheckError);
}

}  // namespace
}  // namespace vitbit::swar
