// Model-zoo registry tests (serve/models/registry.h): catalog lookup and
// error reporting, memoized latency-table coverage through the shared
// builder, the int4 packing advantage showing up in the tables, and the
// cache-aware swap-cost pricing the scheduler charges for model switches.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "serve/models/registry.h"

namespace vitbit::serve {
namespace {

const arch::OrinSpec kSpec;

ModelRegistry make_registry(const std::vector<std::string>& names,
                            int max_batch = 4,
                            SwapCostConfig swap = SwapCostConfig{}) {
  return ModelRegistry(names, core::Strategy::kVitBit, kSpec,
                       arch::default_calibration(), max_batch, swap);
}

TEST(Zoo, CatalogEntriesAreWellFormed) {
  const auto names = zoo_model_names();
  EXPECT_GE(names.size(), 10u);
  for (const auto& name : names) {
    const auto e = zoo_entry(name);
    EXPECT_EQ(e.name, name);
    EXPECT_GT(e.weight_bytes, 0u) << name;
    ASSERT_TRUE(static_cast<bool>(e.log_for_batch)) << name;
    EXPECT_FALSE(e.log_for_batch(1).calls().empty()) << name;
  }
}

TEST(Zoo, UnknownNameThrowsListingCatalog) {
  try {
    zoo_entry("vit-nope");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    // The message must name the bad model and the catalog, so a CLI typo
    // is a one-glance fix.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("vit-nope"), std::string::npos) << msg;
    EXPECT_NE(msg.find("vit-b"), std::string::npos) << msg;
  }
}

TEST(Zoo, Int4VariantsHalveWeightBytes) {
  EXPECT_EQ(zoo_entry("vit-b-int4").weight_bytes,
            zoo_entry("vit-b").weight_bytes / 2);
  EXPECT_EQ(zoo_entry("vit-tiny-int4").weight_bytes,
            zoo_entry("vit-tiny").weight_bytes / 2);
  EXPECT_EQ(zoo_entry("vit-b-int4").strategy_cfg.pack_factor, 4);
}

TEST(ModelRegistry, TablesCoverEveryBatchSize) {
  const auto reg = make_registry({"vit-tiny", "cnn-small", "mixer-tiny"}, 4);
  ASSERT_EQ(reg.num_models(), 3);
  for (int m = 0; m < reg.num_models(); ++m) {
    const auto& t = reg.table(m);
    ASSERT_EQ(t.max_batch(), 4) << reg.name(m);
    for (int b = 1; b <= 4; ++b)
      EXPECT_GE(t.latency_us(b), 1u) << reg.name(m) << " batch " << b;
    // Batching never gets cheaper per batch, and a batch-4 inference must
    // cost well under four batch-1 runs (launch overhead amortizes; the
    // tiny test models are so overhead-dominated that batch 4 can cost
    // exactly batch 1) — the property the scheduler's batching leans on.
    EXPECT_GE(t.latency_us(4), t.latency_us(1)) << reg.name(m);
    EXPECT_LT(t.latency_us(4), 4 * t.latency_us(1)) << reg.name(m);
  }
}

TEST(ModelRegistry, IndexOfRoundTripsAndRejectsMissing) {
  const auto reg = make_registry({"vit-tiny", "vit-tiny-int4"});
  EXPECT_EQ(reg.index_of("vit-tiny"), 0);
  EXPECT_EQ(reg.index_of("vit-tiny-int4"), 1);
  EXPECT_EQ(reg.index_of("cnn-small"), -1);
  EXPECT_EQ(reg.name(0), "vit-tiny");
  EXPECT_THROW(reg.table(2), CheckError);
  EXPECT_THROW(reg.name(-1), CheckError);
}

TEST(ModelRegistry, DuplicateNamesThrow) {
  EXPECT_THROW(make_registry({"vit-tiny", "vit-tiny"}), CheckError);
}

TEST(ModelRegistry, Int4TableIsNoSlowerThanInt8) {
  // The int4 variant serves under pack_factor=4 — twice the operands per
  // register, fewer CUDA-core instructions — so its simulated latency
  // must not exceed the int8 table at any batch size.
  const auto reg = make_registry({"vit-tiny", "vit-tiny-int4"}, 4);
  for (int b = 1; b <= 4; ++b)
    EXPECT_LE(reg.table(1).latency_us(b), reg.table(0).latency_us(b))
        << "batch " << b;
  EXPECT_LT(reg.table(1).latency_us(4), reg.table(0).latency_us(4));
}

TEST(ModelRegistry, ColdSwapPricesWeightBytesOverLink) {
  SwapCostConfig swap;
  swap.load_gbps = 0.05;  // slow link so tiny weights dominate warm cost
  const auto reg = make_registry({"vit-tiny", "vit-tiny-int4"}, 2, swap);
  const auto int8_us = reg.cold_swap_us(0);
  const auto int4_us = reg.cold_swap_us(1);
  EXPECT_GE(int8_us, 1u);
  // Half the weight bytes stream in half the time (within rounding).
  EXPECT_NEAR(static_cast<double>(int4_us),
              static_cast<double>(int8_us) / 2.0, 1.0);
  // Pricing formula: bytes / (GB/s * 1e3 bytes-per-us).
  const double expect_us =
      static_cast<double>(zoo_entry("vit-tiny").weight_bytes) /
      (swap.load_gbps * 1e3);
  EXPECT_NEAR(static_cast<double>(int8_us), expect_us, 1.0);
}

TEST(SwapCostConfig, ValidateRejectsBadKnobs) {
  SwapCostConfig bad;
  bad.load_gbps = 0.0;
  EXPECT_THROW(bad.validate(), CheckError);
  bad = SwapCostConfig{};
  bad.cache_models = 0;
  EXPECT_THROW(bad.validate(), CheckError);
}

}  // namespace
}  // namespace vitbit::serve
