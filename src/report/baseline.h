// Tolerance-based regression gate over run reports.
//
// A fresh RunReport is diffed against a checked-in baseline report; each
// compared metric yields a MetricDelta, and any relative drift strictly
// beyond its tolerance is a violation. Drift is flagged in *both*
// directions: an improvement also trips the gate so baselines get
// regenerated and the perf trajectory stays recorded (ROADMAP north star).
// tools/check_regression turns the result into a CI exit code.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "report/run_report.h"

namespace vitbit::report {

// Relative tolerances per metric family (0.02 == ±2%).
struct ToleranceSpec {
  double cycles = 0.02;
  double ipc = 0.01;
  double instructions = 0.0;  // instruction counts are deterministic
  double energy = 0.05;
  double l2_hit_rate = 0.01;
  // Serving-simulator sweep metrics (rates, percentiles, counts). These
  // inherit drift from the memoized batch latencies, and queueing
  // amplifies a latency shift discretely near saturation, so the band is
  // wider than raw cycles.
  double serve = 0.05;
  // Check per-kernel cycles too (off: only strategy aggregates).
  bool check_kernels = true;
  // A kernel/strategy present in the fresh report but absent from the
  // baseline is recorded as a note, not a violation (new code paths must
  // not fail CI before their baseline lands). The reverse — baseline
  // metric missing from the fresh report — is always a violation.
  bool allow_new_metrics = true;
};

struct MetricDelta {
  // Dotted path naming the metric, e.g. "VitBit.total_cycles" or
  // "VitBit.kernel.layer0.attn.qkv.cycles".
  std::string metric;
  double baseline = 0.0;
  double fresh = 0.0;
  double rel_delta = 0.0;  // |fresh-baseline| / max(|baseline|, eps)
  double tolerance = 0.0;
  bool violated = false;
  std::string note;  // "missing from fresh report", "new metric", ...
};

struct BaselineCheckResult {
  std::vector<MetricDelta> deltas;

  bool ok() const;
  std::vector<MetricDelta> violations() const;
  // Names of violated metrics, for terse CI logs / exit messages.
  std::string first_violation() const;
  // Human-readable delta table (all deltas, violations marked).
  void render(std::ostream& os, bool violations_only = false) const;
};

// Relative delta with a guard against zero baselines.
double relative_delta(double baseline, double fresh);

BaselineCheckResult check_against_baseline(const RunReport& fresh,
                                           const RunReport& baseline,
                                           const ToleranceSpec& tol);

}  // namespace vitbit::report
