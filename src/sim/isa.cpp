#include "sim/isa.h"

#include "common/check.h"

namespace vitbit::sim {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kIadd: return "IADD";
    case Opcode::kImad: return "IMAD";
    case Opcode::kIsetp: return "ISETP";
    case Opcode::kShf: return "SHF";
    case Opcode::kLop3: return "LOP3";
    case Opcode::kMov: return "MOV";
    case Opcode::kI2f: return "I2F";
    case Opcode::kF2i: return "F2I";
    case Opcode::kFadd: return "FADD";
    case Opcode::kFmul: return "FMUL";
    case Opcode::kFfma: return "FFMA";
    case Opcode::kMufu: return "MUFU";
    case Opcode::kImma: return "IMMA";
    case Opcode::kHmma: return "HMMA";
    case Opcode::kLdg: return "LDG";
    case Opcode::kStg: return "STG";
    case Opcode::kLds: return "LDS";
    case Opcode::kSts: return "STS";
    case Opcode::kBar: return "BAR";
    case Opcode::kBra: return "BRA";
    case Opcode::kExit: return "EXIT";
    case Opcode::kNop: return "NOP";
  }
  return "?";
}

const char* unit_name(ExecUnit unit) {
  switch (unit) {
    case ExecUnit::kIntPipe: return "INT";
    case ExecUnit::kFpPipe: return "FP";
    case ExecUnit::kSfu: return "SFU";
    case ExecUnit::kTensor: return "TC";
    case ExecUnit::kLsu: return "LSU";
    case ExecUnit::kBranch: return "BR";
    case ExecUnit::kNone: return "-";
  }
  return "?";
}

const OpInfo& op_info(Opcode op) {
  // 16-lane INT/FP pipes: a 32-thread warp op occupies the port 2 cycles.
  // ALU latency 4-5 (Ampere register-forwarded). IMMA: m16n8k32 held on the
  // tensor core for 16 cycles (256 MACs/cycle sustained; see calibration.h).
  // Memory pipeline parts here; queueing/bandwidth added dynamically.
  static constexpr std::array<OpInfo, kNumOpcodes> kTable = {{
      /*kIadd*/ {ExecUnit::kIntPipe, 2, 4},
      /*kImad*/ {ExecUnit::kIntPipe, 2, 5},
      /*kIsetp*/ {ExecUnit::kIntPipe, 2, 4},
      /*kShf*/ {ExecUnit::kIntPipe, 2, 4},
      /*kLop3*/ {ExecUnit::kIntPipe, 2, 4},
      /*kMov*/ {ExecUnit::kIntPipe, 2, 4},
      /*kI2f*/ {ExecUnit::kIntPipe, 2, 5},
      /*kF2i*/ {ExecUnit::kIntPipe, 2, 5},
      /*kFadd*/ {ExecUnit::kFpPipe, 2, 4},
      /*kFmul*/ {ExecUnit::kFpPipe, 2, 4},
      /*kFfma*/ {ExecUnit::kFpPipe, 2, 4},
      /*kMufu*/ {ExecUnit::kSfu, 8, 16},
      /*kImma*/ {ExecUnit::kTensor, 16, 24},
      /*kHmma*/ {ExecUnit::kTensor, 16, 24},
      /*kLdg*/ {ExecUnit::kLsu, 1, 0},   // latency from the memory model
      /*kStg*/ {ExecUnit::kLsu, 1, 0},
      /*kLds*/ {ExecUnit::kLsu, 1, 0},
      /*kSts*/ {ExecUnit::kLsu, 1, 0},
      /*kBar*/ {ExecUnit::kBranch, 1, 1},
      /*kBra*/ {ExecUnit::kBranch, 1, 2},
      /*kExit*/ {ExecUnit::kBranch, 1, 1},
      /*kNop*/ {ExecUnit::kBranch, 1, 1},
  }};
  const int i = static_cast<int>(op);
  VITBIT_DCHECK(i >= 0 && i < kNumOpcodes);
  return kTable[static_cast<std::size_t>(i)];
}

bool is_int_pipe(Opcode op) { return op_info(op).unit == ExecUnit::kIntPipe; }
bool is_fp_pipe(Opcode op) { return op_info(op).unit == ExecUnit::kFpPipe; }
bool is_memory(Opcode op) { return op_info(op).unit == ExecUnit::kLsu; }

}  // namespace vitbit::sim
