#include "serve/cluster.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/cli.h"
#include "common/thread_pool.h"
#include "nn/vit_model.h"

namespace vitbit::serve {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

std::string fmt_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", rate);
  return buf;
}

// Disjoint per-shard fault streams: each shard's FaultModel gets its own
// seed so shards fail independently (a different stride constant from the
// per-replica derivation inside FaultModel, so shard and replica streams
// never alias).
std::uint64_t shard_fault_seed(std::uint64_t seed, int shard) {
  return seed + 0xbf58476d1ce4e5b9ull * (static_cast<std::uint64_t>(shard) + 1);
}

}  // namespace

void FleetConfig::validate() const {
  VITBIT_CHECK_MSG(num_shards >= 1, "fleet needs >= 1 shard");
  shard.validate();
  autoscale.validate();
  if (autoscale.enabled())
    VITBIT_CHECK_MSG(shard.faults.degrade_below_live <= autoscale.max_replicas,
                     "degrade_below_live "
                         << shard.faults.degrade_below_live
                         << " exceeds max_replicas "
                         << autoscale.max_replicas);
}

ServeMetrics aggregate_shard_metrics(const std::vector<ServeMetrics>& shards,
                                     std::uint64_t end_us) {
  ServeMetrics m;
  std::uint64_t span_sum_us = 0;  // sum of per-shard virtual-time spans
  for (const auto& s : shards) {
    m.offered += s.offered;
    m.completed += s.completed;
    m.dropped += s.dropped;
    m.batch_failures += s.batch_failures;
    m.retries += s.retries;
    m.requeued += s.requeued;
    m.shed += s.shed;
    m.failovers += s.failovers;
    m.degraded_s += s.degraded_s;
    m.batches += s.batches;
    m.within_slo += s.within_slo;
    m.busy_us += s.busy_us;
    m.replica_time_us += s.replica_time_us;
    m.depth_integral_us += s.depth_integral_us;
    m.batched_requests += s.batched_requests;
    m.max_queue_depth = std::max(m.max_queue_depth, s.max_queue_depth);
    span_sum_us += s.end_us;
  }
  m.end_us = end_us;
  m.duration_s = static_cast<double>(end_us) / 1e6;
  m.mean_batch_size = m.batches == 0
                          ? 0.0
                          : static_cast<double>(m.batched_requests) /
                                static_cast<double>(m.batches);
  m.drop_rate = m.offered == 0 ? 0.0
                               : static_cast<double>(m.dropped) /
                                     static_cast<double>(m.offered);
  if (end_us > 0) {
    m.throughput_rps = static_cast<double>(m.completed) / m.duration_s;
    m.goodput_rps = static_cast<double>(m.within_slo) / m.duration_s;
  }
  // Span-weighted ratios: a shard that served twice the replica-time (or
  // span) contributes twice the weight, instead of a naive average of the
  // per-shard ratios — fleet_test pins the two-shard unequal-span case.
  if (m.replica_time_us > 0)
    m.utilization = static_cast<double>(m.busy_us) /
                    static_cast<double>(m.replica_time_us);
  if (span_sum_us > 0)
    m.mean_queue_depth = static_cast<double>(m.depth_integral_us) /
                         static_cast<double>(span_sum_us);
  return m;
}

FleetMetrics simulate_fleet(const WorkloadConfig& workload,
                            const LatencyTable& latency,
                            const FleetConfig& cfg,
                            const LatencyTable* fallback) {
  cfg.validate();
  const auto n = static_cast<std::size_t>(cfg.num_shards);
  std::vector<std::unique_ptr<ShardSim>> shards;
  shards.reserve(n);
  for (int s = 0; s < cfg.num_shards; ++s) {
    ServerConfig sc = cfg.shard;
    sc.faults.seed = shard_fault_seed(cfg.shard.faults.seed, s);
    shards.push_back(std::make_unique<ShardSim>(latency, sc, fallback,
                                                cfg.percentiles,
                                                cfg.autoscale));
  }
  Router router(cfg.route, cfg.route_seed, cfg.num_shards);
  WorkloadStream stream(workload);
  std::vector<std::size_t> loads(n);

  // The fleet event loop: every shard steps at every global timestamp in
  // shard-index order (fault transitions and completions first, then
  // autoscale decisions, arrivals routed on live loads, retries,
  // dispatch), then time advances to the earliest next event anywhere.
  std::uint64_t now = 0;
  std::uint64_t end = 0;
  while (true) {
    for (auto& sh : shards) sh->begin_step(now);
    for (auto& sh : shards) sh->maybe_autoscale(now);
    while (stream.has_next() && stream.peek_arrival_us() <= now) {
      const Request r = stream.next();
      for (std::size_t s = 0; s < n; ++s) loads[s] = shards[s]->load();
      shards[static_cast<std::size_t>(router.route(r, loads))]->admit(now, r);
    }
    for (auto& sh : shards) sh->admit_due_retries(now);
    for (auto& sh : shards) sh->dispatch(now);

    std::uint64_t t_next = kNever;
    for (auto& sh : shards)
      t_next = std::min(t_next, sh->next_internal_event_us());
    if (stream.has_next()) t_next = std::min(t_next, stream.peek_arrival_us());
    bool all_idle = true;
    for (auto& sh : shards)
      if (!sh->idle()) {
        all_idle = false;
        break;
      }
    if (!stream.has_next() && all_idle) break;  // drained
    // Fault and autoscale timers only keep the loop alive while work
    // remains somewhere in the fleet.
    for (auto& sh : shards) t_next = std::min(t_next, sh->next_timer_us());
    VITBIT_CHECK_MSG(t_next != kNever && t_next > now,
                     "fleet loop failed to advance");
    now = t_next;
    end = std::max(end, now);
  }

  FleetMetrics fm;
  fm.per_shard.reserve(n);
  for (auto& sh : shards) {
    // Each shard finalizes at its own span: metric denominators reflect
    // the time the shard actually served, which is what the span-weighted
    // aggregation below expects.
    fm.per_shard.push_back(sh->finalize(sh->last_activity_us()));
    fm.scale_ups += sh->scale_ups();
    fm.scale_downs += sh->scale_downs();
  }
  fm.total = aggregate_shard_metrics(fm.per_shard, end);
  // Fleet-wide percentiles, merged in shard-index order (the P² merge is
  // not associative, so the order is part of the determinism contract).
  if (cfg.percentiles == PercentileMode::kSketch) {
    LatencySketch merged;
    for (auto& sh : shards) merged.merge(sh->sink().sketch());
    fm.total.p50_us = merged.percentile_us(50.0);
    fm.total.p90_us = merged.percentile_us(90.0);
    fm.total.p95_us = merged.percentile_us(95.0);
    fm.total.p99_us = merged.percentile_us(99.0);
    fm.total.max_us = merged.max_us();
  } else {
    std::vector<std::uint64_t> all;
    for (auto& sh : shards) {
      const auto& v = sh->sink().latencies();
      all.insert(all.end(), v.begin(), v.end());
    }
    std::sort(all.begin(), all.end());
    const auto at = [&all](double p) {
      return percentile_nearest_rank(all, p);
    };
    fm.total.p50_us = at(50.0);
    fm.total.p90_us = at(90.0);
    fm.total.p95_us = at(95.0);
    fm.total.p99_us = at(99.0);
    fm.total.max_us = at(100.0);
  }
  if (!fm.per_shard.empty()) {
    fm.shard_util_min = fm.per_shard.front().utilization;
    fm.shard_util_max = fm.per_shard.front().utilization;
    for (const auto& s : fm.per_shard) {
      fm.shard_util_min = std::min(fm.shard_util_min, s.utilization);
      fm.shard_util_max = std::max(fm.shard_util_max, s.utilization);
    }
  }
  VITBIT_CHECK_MSG(
      fm.total.offered == fm.total.completed + fm.total.dropped + fm.total.shed,
      "fleet request conservation violated at drain: offered "
          << fm.total.offered << " != completed " << fm.total.completed
          << " + dropped " << fm.total.dropped << " + shed " << fm.total.shed);
  return fm;
}

std::vector<FleetPoint> run_fleet_sweep(const FleetSweepConfig& cfg,
                                        const arch::OrinSpec& spec,
                                        const arch::Calibration& calib,
                                        ThreadPool* pool) {
  VITBIT_CHECK_MSG(!cfg.routes.empty(), "fleet sweep needs >= 1 route");
  VITBIT_CHECK_MSG(!cfg.rates_rps.empty(), "fleet sweep needs >= 1 rate");
  cfg.fleet.validate();

  // Phase 1: memoized latency tables — the swept strategy, plus the
  // fallback when degraded-mode failover is on and it differs.
  const bool degrade_on = cfg.fleet.shard.faults.degrade_below_live > 0;
  std::vector<core::Strategy> to_build = {cfg.strategy};
  if (degrade_on && cfg.fallback_strategy != cfg.strategy)
    to_build.push_back(cfg.fallback_strategy);
  const auto tables =
      build_latency_tables(cfg.model, to_build, cfg.strategy_cfg, spec, calib,
                           cfg.fleet.shard.batcher.max_batch_size, pool);
  const LatencyTable* fallback =
      degrade_on ? &tables[to_build.size() - 1] : nullptr;
  if (degrade_on && cfg.fallback_strategy == cfg.strategy)
    fallback = &tables[0];

  // Phase 2: one single-threaded fleet loop per (route, rate) point,
  // fanned out over the pool in index order. Every point regenerates the
  // workload from the shared seed, so all policies at one rate face
  // byte-identical request streams.
  const auto n_routes = cfg.routes.size();
  const auto n_rates = cfg.rates_rps.size();
  return parallel_map(pool, n_routes * n_rates, [&](std::size_t i) {
    const std::size_t ri = i / n_rates;
    const std::size_t r = i % n_rates;
    WorkloadConfig w = cfg.workload;
    w.rate_rps = cfg.rates_rps[r];
    FleetConfig fc = cfg.fleet;
    fc.route = cfg.routes[ri];
    FleetPoint point;
    point.route = cfg.routes[ri];
    point.rate_rps = cfg.rates_rps[r];
    point.metrics = simulate_fleet(w, tables[0], fc, fallback);
    return point;
  });
}

Table fleet_table(const FleetSweepConfig& cfg,
                  const std::vector<FleetPoint>& points) {
  Table t("fleet simulation — " + std::to_string(cfg.fleet.num_shards) +
          " shards, " + core::strategy_name(cfg.strategy) + ", " +
          arrival_kind_name(cfg.workload.kind) + " arrivals");
  std::vector<std::string> header = {"rate (req/s)"};
  for (const auto r : cfg.routes) {
    const std::string name = route_policy_name(r);
    header.push_back(name + " goodput");
    header.push_back(name + " p99 (ms)");
    header.push_back(name + " drop %");
    header.push_back(name + " util spread");
  }
  t.header(std::move(header));
  const auto n_rates = cfg.rates_rps.size();
  for (std::size_t r = 0; r < n_rates; ++r) {
    auto& row = t.row();
    row.cell(cfg.rates_rps[r], 1);
    for (std::size_t ri = 0; ri < cfg.routes.size(); ++ri) {
      const auto& m = points[ri * n_rates + r].metrics;
      row.cell(m.total.goodput_rps, 1)
          .cell(static_cast<double>(m.total.p99_us) / 1e3, 3)
          .cell(m.total.drop_rate * 100.0, 2)
          .cell(m.shard_util_max - m.shard_util_min, 3);
    }
  }
  return t;
}

FleetSweepConfig fleet_config_from_cli(const Cli& cli) {
  FleetSweepConfig cfg;
  cfg.model = nn::vit_base();
  cfg.model.num_layers =
      static_cast<int>(cli.get_int("layers", cfg.model.num_layers));

  const std::string strat = cli.get("strategy", "VitBit");
  bool found = false;
  for (const auto s : core::all_strategies())
    if (strat == core::strategy_name(s)) {
      cfg.strategy = s;
      found = true;
      break;
    }
  VITBIT_CHECK_MSG(found, "unknown strategy: " << strat);

  if (cli.has("routes"))
    cfg.routes = parse_route_list(cli.get("routes", ""));
  else if (cli.has("route"))
    cfg.routes = {route_policy_from_name(cli.get("route", ""))};
  if (cli.has("rates"))
    cfg.rates_rps = parse_rate_list(cli.get("rates", ""));
  else if (cli.has("rate"))
    cfg.rates_rps = {cli.get_double("rate", 0.0)};
  cfg.workload.kind = arrival_kind_from_name(cli.get("arrival", "poisson"));
  cfg.workload.duration_s = cli.get_double("duration-s", 2.0);
  cfg.workload.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  auto& fleet = cfg.fleet;
  fleet.num_shards = static_cast<int>(cli.get_int("shards", 4));
  fleet.route_seed = static_cast<std::uint64_t>(cli.get_int("route-seed", 1));
  fleet.percentiles = cli.get_bool("exact", false) ? PercentileMode::kExact
                                                   : PercentileMode::kSketch;
  fleet.shard.policy = cli.get("policy", "timeout");
  fleet.shard.batcher.max_batch_size =
      static_cast<int>(cli.get_int("max-batch", 8));
  fleet.shard.batcher.batch_timeout_us =
      static_cast<std::uint64_t>(cli.get_int("batch-timeout-us", 2000));
  fleet.shard.batcher.queue_capacity =
      static_cast<int>(cli.get_int("queue-capacity", 64));
  fleet.shard.num_gpus = static_cast<int>(cli.get_int("replicas", 1));
  fleet.shard.slo_us =
      static_cast<std::uint64_t>(cli.get_int("slo-us", 50000));

  auto& f = fleet.shard.faults;
  f.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  f.replica_mtbf_s = cli.get_double("mtbf-s", 0.0);
  f.replica_mttr_s = cli.get_double("mttr-s", 0.05);
  f.batch_failure_prob = cli.get_double("batch-fail-prob", 0.0);
  f.latency_spike_prob = cli.get_double("spike-prob", 0.0);
  f.latency_spike_mult = cli.get_double("spike-mult", 4.0);
  f.max_retries = static_cast<int>(cli.get_int("max-retries", 2));
  f.retry_backoff_us =
      static_cast<std::uint64_t>(cli.get_int("retry-backoff-us", 1000));
  f.degrade_below_live = static_cast<int>(cli.get_int("degrade-below", 0));

  auto& as = fleet.autoscale;
  as.min_replicas =
      static_cast<int>(cli.get_int("min-replicas", fleet.shard.num_gpus));
  as.max_replicas =
      static_cast<int>(cli.get_int("max-replicas", as.min_replicas));
  as.interval_us =
      static_cast<std::uint64_t>(cli.get_int("scale-interval-us", 50000));
  as.up_queue_depth =
      static_cast<std::size_t>(cli.get_int("scale-up-depth", 16));
  as.down_queue_depth =
      static_cast<std::size_t>(cli.get_int("scale-down-depth", 2));
  as.up_p99_us = static_cast<std::uint64_t>(cli.get_int("scale-p99-us", 0));
  as.cooldown_us =
      static_cast<std::uint64_t>(cli.get_int("scale-cooldown-us", 200000));

  const std::string fb = cli.get("fallback", "TC");
  found = false;
  for (const auto s : core::all_strategies())
    if (fb == core::strategy_name(s)) {
      cfg.fallback_strategy = s;
      found = true;
      break;
    }
  VITBIT_CHECK_MSG(found, "unknown fallback strategy: " << fb);

  cfg.fleet.validate();
  return cfg;
}

report::RunReport make_fleet_report(const FleetSweepConfig& cfg,
                                    const std::vector<FleetPoint>& points,
                                    const std::string& tool, int threads) {
  report::RunReport rep;
  rep.tool = tool;
  rep.meta = report::build_metadata();
  rep.meta["model"] = "vit";
  rep.meta["layers"] = std::to_string(cfg.model.num_layers);
  rep.meta["strategy"] = core::strategy_name(cfg.strategy);
  rep.meta["arrival"] = arrival_kind_name(cfg.workload.kind);
  rep.meta["duration_s"] = fmt_rate(cfg.workload.duration_s);
  rep.meta["seed"] = std::to_string(cfg.workload.seed);
  rep.meta["shards"] = std::to_string(cfg.fleet.num_shards);
  rep.meta["route_seed"] = std::to_string(cfg.fleet.route_seed);
  rep.meta["percentiles"] =
      cfg.fleet.percentiles == PercentileMode::kSketch ? "sketch" : "exact";
  rep.meta["policy"] = cfg.fleet.shard.policy;
  rep.meta["max_batch_size"] =
      std::to_string(cfg.fleet.shard.batcher.max_batch_size);
  rep.meta["batch_timeout_us"] =
      std::to_string(cfg.fleet.shard.batcher.batch_timeout_us);
  rep.meta["queue_capacity"] =
      std::to_string(cfg.fleet.shard.batcher.queue_capacity);
  rep.meta["replicas"] = std::to_string(cfg.fleet.shard.num_gpus);
  rep.meta["slo_us"] = std::to_string(cfg.fleet.shard.slo_us);
  const auto& f = cfg.fleet.shard.faults;
  rep.meta["fault_seed"] = std::to_string(f.seed);
  rep.meta["mtbf_s"] = fmt_rate(f.replica_mtbf_s);
  rep.meta["mttr_s"] = fmt_rate(f.replica_mttr_s);
  rep.meta["batch_fail_prob"] = fmt_rate(f.batch_failure_prob);
  rep.meta["spike_prob"] = fmt_rate(f.latency_spike_prob);
  rep.meta["spike_mult"] = fmt_rate(f.latency_spike_mult);
  rep.meta["max_retries"] = std::to_string(f.max_retries);
  rep.meta["retry_backoff_us"] = std::to_string(f.retry_backoff_us);
  rep.meta["degrade_below_live"] = std::to_string(f.degrade_below_live);
  rep.meta["fallback"] = core::strategy_name(cfg.fallback_strategy);
  const auto& as = cfg.fleet.autoscale;
  rep.meta["min_replicas"] = std::to_string(as.min_replicas);
  rep.meta["max_replicas"] = std::to_string(as.max_replicas);
  rep.meta["scale_interval_us"] = std::to_string(as.interval_us);
  rep.meta["scale_up_depth"] = std::to_string(as.up_queue_depth);
  rep.meta["scale_down_depth"] = std::to_string(as.down_queue_depth);
  rep.meta["scale_p99_us"] = std::to_string(as.up_p99_us);
  rep.meta["scale_cooldown_us"] = std::to_string(as.cooldown_us);
  rep.threads = threads;
  for (const auto& p : points) {
    report::FleetPointReport fp;
    fp.strategy = core::strategy_name(cfg.strategy);
    fp.route = route_policy_name(p.route);
    fp.policy = cfg.fleet.shard.policy;
    fp.arrival = arrival_kind_name(cfg.workload.kind);
    fp.rate_rps = p.rate_rps;
    const auto& m = p.metrics.total;
    fp.offered = m.offered;
    fp.completed = m.completed;
    fp.dropped = m.dropped;
    fp.shed = m.shed;
    fp.batches = m.batches;
    fp.mean_batch_size = m.mean_batch_size;
    fp.drop_rate = m.drop_rate;
    fp.throughput_rps = m.throughput_rps;
    fp.goodput_rps = m.goodput_rps;
    fp.utilization = m.utilization;
    fp.mean_queue_depth = m.mean_queue_depth;
    fp.max_queue_depth = m.max_queue_depth;
    fp.p50_us = m.p50_us;
    fp.p90_us = m.p90_us;
    fp.p95_us = m.p95_us;
    fp.p99_us = m.p99_us;
    fp.scale_ups = p.metrics.scale_ups;
    fp.scale_downs = p.metrics.scale_downs;
    fp.shard_util_min = p.metrics.shard_util_min;
    fp.shard_util_max = p.metrics.shard_util_max;
    rep.fleet_points.push_back(std::move(fp));
  }
  return rep;
}

}  // namespace vitbit::serve
