#include "serve/sketch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vitbit::serve {

P2Quantile::P2Quantile(double q) : q_(q) {
  VITBIT_CHECK_MSG(q > 0.0 && q < 1.0, "P2 quantile must be in (0, 1)");
  buffer_.reserve(5);
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::establish() {
  // The buffer normally holds exactly five samples, but a merge of two
  // still-buffering estimators can leave more (the concatenation stays
  // exact until the next add()). Seat the markers at the nearest-rank
  // positions for the q-quantile, then clamp them strictly increasing so
  // the P² invariants hold; for n == 5 this reduces to positions 1..5 and
  // heights = sorted buffer, byte-identical to the classic start-up.
  std::sort(buffer_.begin(), buffer_.end());
  const auto n = static_cast<double>(buffer_.size());
  positions_[0] = 1.0;
  positions_[4] = n;
  for (int i = 1; i <= 3; ++i)
    positions_[i] =
        static_cast<double>(std::llround(1.0 + (n - 1.0) * increments_[i]));
  for (int i = 1; i <= 3; ++i)
    positions_[i] = std::max(positions_[i], positions_[i - 1] + 1.0);
  for (int i = 3; i >= 1; --i)
    positions_[i] = std::min(positions_[i], positions_[i + 1] - 1.0);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = buffer_[static_cast<std::size_t>(positions_[i]) - 1];
    desired_[i] = 1.0 + (n - 1.0) * increments_[i];
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
}

bool P2Quantile::established() const { return count_ > 0 && buffer_.empty(); }

void P2Quantile::add(double x) {
  const bool est = established();
  ++count_;
  if (est) {
    add_established(x);
    return;
  }
  buffer_.push_back(x);
  if (buffer_.size() >= 5) establish();
}

void P2Quantile::add_established(double x) {
  // Cell k: the marker interval x falls into; the extreme markers absorb
  // out-of-range observations.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Nudge the three interior markers toward their desired positions with
  // the piecewise-parabolic (P²) height update, falling back to linear
  // interpolation when the parabola would break marker monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double ahead = positions_[i + 1] - positions_[i];
    const double behind = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && ahead > 1.0) || (d <= -1.0 && behind < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double qp =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + s) *
                   (heights_[i + 1] - heights_[i]) / ahead +
               (positions_[i + 1] - positions_[i] - s) *
                   (heights_[i] - heights_[i - 1]) / -behind);
      if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
        heights_[i] = qp;
      } else {
        // Linear step toward the neighbor in the adjustment direction.
        const int j = i + static_cast<int>(s);
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (!buffer_.empty()) {
    // Exact nearest-rank over the start-up buffer.
    auto sorted = buffer_;
    std::sort(sorted.begin(), sorted.end());
    auto rank = static_cast<std::size_t>(
        std::ceil(q_ * static_cast<double>(sorted.size())));
    rank = std::max<std::size_t>(rank, 1);
    rank = std::min(rank, sorted.size());
    return sorted[rank - 1];
  }
  return heights_[2];
}

void P2Quantile::merge(const P2Quantile& other) {
  VITBIT_CHECK_MSG(q_ == other.q_, "merging P2 estimators of different "
                                   "quantiles");
  if (other.count_ == 0) return;
  if (!other.buffer_.empty()) {
    if (!established()) {
      // Both sides are still buffering: concatenate the exact samples and
      // stay in buffer mode, so merged-then-queried percentiles equal the
      // exact path over the combined stream and a later add() establishes
      // the markers from the full concatenation (never from a stale
      // five-sample prefix of one side).
      buffer_.insert(buffer_.end(), other.buffer_.begin(),
                     other.buffer_.end());
      count_ += other.count_;
      return;
    }
    // The source never left its start-up buffer: replay it exactly.
    for (const double x : other.buffer_) add(x);
    return;
  }
  if (count_ == 0 || !buffer_.empty()) {
    // The destination is still buffering: adopt the established source,
    // then replay our own buffered samples into it.
    const auto mine = buffer_;
    *this = other;
    for (const double x : mine) add(x);
    return;
  }
  // Both established: extremes take the envelope, interior heights are
  // count-weighted averages, positions and counts add. The desired
  // positions are recomputed from the merged count so later add() calls
  // keep converging. This is the floating-point-non-associative step the
  // fixed merge order exists for.
  const auto wa = static_cast<double>(count_);
  const auto wb = static_cast<double>(other.count_);
  heights_[0] = std::min(heights_[0], other.heights_[0]);
  heights_[4] = std::max(heights_[4], other.heights_[4]);
  for (int i = 1; i <= 3; ++i)
    heights_[i] = (heights_[i] * wa + other.heights_[i] * wb) / (wa + wb);
  for (int i = 0; i < 5; ++i) {
    positions_[i] += other.positions_[i];
    desired_[i] = 1.0 + (wa + wb - 1.0) * increments_[i];
  }
  // Re-sort interior heights in the (rare) case weighted averaging broke
  // monotonicity between adjacent markers of very different shapes.
  std::sort(heights_ + 1, heights_ + 4);
  count_ += other.count_;
}

LatencySketch::LatencySketch() {
  quantiles_.reserve(4);
  for (const double q : {0.50, 0.90, 0.95, 0.99}) quantiles_.emplace_back(q);
}

void LatencySketch::add(std::uint64_t latency_us) {
  if (count_ == 0) {
    min_us_ = latency_us;
    max_us_ = latency_us;
  } else {
    min_us_ = std::min(min_us_, latency_us);
    max_us_ = std::max(max_us_, latency_us);
  }
  ++count_;
  const auto x = static_cast<double>(latency_us);
  for (auto& q : quantiles_) q.add(x);
}

void LatencySketch::merge(const LatencySketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_us_ = other.min_us_;
    max_us_ = other.max_us_;
  } else {
    min_us_ = std::min(min_us_, other.min_us_);
    max_us_ = std::max(max_us_, other.max_us_);
  }
  count_ += other.count_;
  for (std::size_t i = 0; i < quantiles_.size(); ++i)
    quantiles_[i].merge(other.quantiles_[i]);
}

std::uint64_t LatencySketch::percentile_us(double p) const {
  if (count_ == 0) return 0;
  if (p == 0.0) return min_us();
  if (p == 100.0) return max_us_;
  for (const auto& q : quantiles_) {
    if (q.quantile() * 100.0 == p) {
      const double v = std::clamp(q.value(), static_cast<double>(min_us_),
                                  static_cast<double>(max_us_));
      return static_cast<std::uint64_t>(std::llround(v));
    }
  }
  VITBIT_CHECK_MSG(false, "percentile " << p << " is not tracked by the "
                                           "latency sketch");
  return 0;
}

}  // namespace vitbit::serve
