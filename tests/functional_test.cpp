// Tests for the functional warp interpreter — including the headline check
// that a hand-written packed-MAC kernel computes exactly what the swar
// library predicts.
#include <gtest/gtest.h>

#include <array>

#include "common/check.h"
#include "common/rng.h"
#include "sim/functional.h"
#include "swar/pack.h"

namespace vitbit::sim {
namespace {

TEST(FunctionalWarp, AluBasics) {
  ProgramBuilder b;
  const auto r0 = b.new_reg();
  const auto r1 = b.new_reg();
  const auto r2 = b.new_reg();
  b.iadd(r2, r0, r1);
  b.imad(r2, r0, r1, r2);
  b.exit();
  FunctionalWarp w(b.build(), {});
  w.set_reg(r0, 7);
  w.set_reg(r1, 9);
  w.run();
  EXPECT_EQ(w.reg(r2), 7u + 9u + 7u * 9u);
  EXPECT_EQ(w.executed(), 3u);
}

TEST(FunctionalWarp, WrappingImad) {
  // SWAR correctness depends on mod-2^32 semantics.
  ProgramBuilder b;
  const auto a = b.new_reg();
  const auto x = b.new_reg();
  const auto acc = b.new_reg();
  b.imad(acc, a, x, acc);
  b.exit();
  FunctionalWarp w(b.build(), {});
  w.set_reg(a, 0xFFFFFFFFu);  // -1
  w.set_reg(x, 2);
  w.set_reg(acc, 5);
  w.run();
  EXPECT_EQ(w.reg(acc), 3u);  // -2 + 5
}

TEST(FunctionalWarp, ShiftAndMaskImmediates) {
  ProgramBuilder b;
  const auto src = b.new_reg();
  const auto hi = b.new_reg();
  const auto lo = b.new_reg();
  emit_shf_imm(b, hi, src, 16);
  emit_and_imm(b, lo, src, 0xFFFF);
  b.exit();
  FunctionalWarp w(b.build(), {});
  w.set_reg(src, 0xABCD1234u);
  w.run();
  EXPECT_EQ(w.reg(hi), 0xABCDu);
  EXPECT_EQ(w.reg(lo), 0x1234u);
}

TEST(FunctionalWarp, FloatPath) {
  ProgramBuilder b;
  const auto i = b.new_reg();
  const auto f = b.new_reg();
  const auto g = b.new_reg();
  const auto out = b.new_reg();
  b.i2f(f, i);
  b.ffma(g, f, f, f);  // x*x + x
  b.emit(Opcode::kF2i, out, g);
  b.exit();
  FunctionalWarp w(b.build(), {});
  w.set_reg(i, 5);
  w.run();
  EXPECT_EQ(w.reg(out), 30u);
}

TEST(FunctionalWarp, GlobalAndSharedMemory) {
  ProgramBuilder b;
  const auto v = b.new_reg();
  const auto v2 = b.new_reg();
  b.ldg(v, 4, UINT32_MAX, /*operand=*/0, /*offset=*/8);
  b.sts(v, 4);
  b.last().offset = 100;
  b.lds(v2, 4);
  b.last().offset = 100;
  b.stg(v2, 4, UINT32_MAX, /*operand=*/1, /*offset=*/0);
  b.exit();
  std::vector<std::uint8_t> mem(64, 0);
  mem[8] = 0x78;
  mem[9] = 0x56;
  FunctionalWarp w(b.build(), mem, {0, 32, 0, 0});
  w.run();
  EXPECT_EQ(mem[32], 0x78);
  EXPECT_EQ(mem[33], 0x56);
}

TEST(FunctionalWarp, RejectsTensorOps) {
  ProgramBuilder b;
  const auto a = b.new_reg();
  b.imma(a, a, a);
  b.exit();
  FunctionalWarp w(b.build(), {});
  EXPECT_THROW(w.run(), CheckError);
}

TEST(FunctionalWarp, OutOfBoundsMemoryThrows) {
  ProgramBuilder b;
  const auto v = b.new_reg();
  b.ldg(v, 4, UINT32_MAX, 0, 1000);
  b.exit();
  std::vector<std::uint8_t> mem(16);
  FunctionalWarp w(b.build(), mem, {});
  EXPECT_THROW(w.run(), CheckError);
}

TEST(FunctionalWarp, PackedMacMatchesSwarLibrary) {
  // The unification check: a kernel that multiplies a packed register by a
  // sequence of scalars and spills the lanes must reproduce the swar
  // library's packed-GEMM arithmetic exactly.
  const auto layout = swar::paper_policy_layout(8, swar::LaneMode::kUnsigned);
  Rng rng(42);
  // Within the unsigned worst-case budget at small values.
  const int k_steps = 4;
  std::vector<std::int32_t> a(k_steps), b0(k_steps), b1(k_steps);
  for (int i = 0; i < k_steps; ++i) {
    a[i] = static_cast<std::int32_t>(rng.range(0, 15));
    b0[i] = static_cast<std::int32_t>(rng.range(0, 15));
    b1[i] = static_cast<std::int32_t>(rng.range(0, 15));
  }

  // Global memory: operand 0 holds packed words, operand 1 the scalars,
  // operand 2 receives the two lane sums.
  std::vector<std::uint8_t> mem(256, 0);
  for (int i = 0; i < k_steps; ++i) {
    const std::array<std::int32_t, 2> lanes = {b0[i], b1[i]};
    const std::uint32_t word = swar::pack_lanes(lanes, layout);
    for (int byte = 0; byte < 4; ++byte)
      mem[static_cast<std::size_t>(i * 4 + byte)] =
          static_cast<std::uint8_t>(word >> (8 * byte));
    for (int byte = 0; byte < 4; ++byte)
      mem[static_cast<std::size_t>(64 + i * 4 + byte)] =
          static_cast<std::uint8_t>(static_cast<std::uint32_t>(a[i]) >>
                                    (8 * byte));
  }

  ProgramBuilder pb;
  const auto acc = pb.new_reg();
  const auto scal = pb.new_reg();
  const auto packed = pb.new_reg();
  for (int i = 0; i < k_steps; ++i) {
    pb.ldg(packed, 4, UINT32_MAX, 0, static_cast<std::uint32_t>(4 * i));
    pb.ldg(scal, 4, UINT32_MAX, 1, static_cast<std::uint32_t>(4 * i));
    pb.imad(acc, scal, packed, acc);
  }
  // Lane spill: low 16 bits and high 16 bits.
  const auto lo = pb.new_reg();
  const auto hi = pb.new_reg();
  emit_and_imm(pb, lo, acc, 0xFFFF);
  emit_shf_imm(pb, hi, acc, 16);
  pb.stg(lo, 4, UINT32_MAX, 2, 0);
  pb.stg(hi, 4, UINT32_MAX, 2, 4);
  pb.exit();

  FunctionalWarp w(pb.build(), mem, {0, 64, 128, 0});
  w.run();

  std::int64_t want0 = 0, want1 = 0;
  for (int i = 0; i < k_steps; ++i) {
    want0 += static_cast<std::int64_t>(a[i]) * b0[i];
    want1 += static_cast<std::int64_t>(a[i]) * b1[i];
  }
  const std::uint32_t got0 = mem[128] | (mem[129] << 8);
  const std::uint32_t got1 = mem[132] | (mem[133] << 8);
  EXPECT_EQ(got0, static_cast<std::uint32_t>(want0));
  EXPECT_EQ(got1, static_cast<std::uint32_t>(want1));
}

}  // namespace
}  // namespace vitbit::sim
