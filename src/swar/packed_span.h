// Span (bulk) forms of the SWAR primitives: pack/unpack of contiguous
// value runs and word-wise lane ops over contiguous word runs. These are
// the vectorization seam of the SWAR layer — on AVX2 machines the uniform
// layouts (num_lanes * field_bits == 32, i.e. 2x16 and 4x8) run through
// the intrinsic kernels in packed_span_avx2.cpp; every other layout (3x10)
// and every lower SIMD tier runs the scalar per-word primitives from
// swar/pack.h and swar/packed_simd.h. Both paths compute the identical
// wrapping 32-bit arithmetic, so results are lane-exact regardless of tier
// (VITBIT_SIMD_LEVEL flips the implementation, never the answer).
//
// Debug builds always take the scalar path for the ops that carry
// per-lane overflow/borrow VITBIT_CHECKs (add, sub, scalar_mul) so those
// diagnostics are never skipped; the checks vanish in release either way.
#pragma once

#include <cstdint>
#include <span>

#include "swar/layout.h"
#include "swar/packed_simd.h"

namespace vitbit::swar {

// Encodes values[i*L + lane] (lane 0 first) into out_words[i]; the final
// word is zero-value-padded when values.size() is not a multiple of
// num_lanes. Requires out_words.size() == ceil(values.size() / L). Throws
// CheckError (same message as pack_lanes) on any out-of-range value.
void pack_span(std::span<const std::int32_t> values, const LaneLayout& layout,
               std::span<std::uint32_t> out_words);

// Decodes the first values.size() lanes of `words` (lane-0-first order).
// Requires words.size() == ceil(values.size() / L).
void unpack_span(std::span<const std::uint32_t> words,
                 const LaneLayout& layout, std::span<std::int32_t> values);

// r[i] = swar_add(a[i], b[i]); a, b, r must have equal sizes (r may alias
// a or b — each word is read before it is written).
void swar_add_span(std::span<const std::uint32_t> a,
                   std::span<const std::uint32_t> b,
                   std::span<std::uint32_t> r, const LaneLayout& layout);

// r[i] = swar_sub(a[i], b[i]).
void swar_sub_span(std::span<const std::uint32_t> a,
                   std::span<const std::uint32_t> b,
                   std::span<std::uint32_t> r, const LaneLayout& layout);

// r[i] = swar_scalar_mul(a[i], c).
void swar_scalar_mul_span(std::span<const std::uint32_t> a, std::uint32_t c,
                          std::span<std::uint32_t> r,
                          const LaneLayout& layout);

// r[i] = swar_shift_right(a[i], s).
void swar_shift_right_span(std::span<const std::uint32_t> a, int s,
                           std::span<std::uint32_t> r,
                           const LaneLayout& layout);

// r[i] = swar_mask_low(a[i], s).
void swar_mask_low_span(std::span<const std::uint32_t> a, int s,
                        std::span<std::uint32_t> r, const LaneLayout& layout);

// r[i] = swar_min_const(a[i], c).
void swar_min_const_span(std::span<const std::uint32_t> a, std::uint32_t c,
                         std::span<std::uint32_t> r,
                         const LaneLayout& layout);

// acc[i] += enc * words[i] as wrapping uint32 — the packed-IMAD inner step
// of gemm_packed applied across a whole row of packed columns. Wrapping
// unsigned arithmetic is exact modulo 2^32, so the vector and scalar forms
// are bit-identical by definition. Requires acc.size() == words.size().
void swar_mac_span(std::span<std::uint32_t> acc, std::uint32_t enc,
                   std::span<const std::uint32_t> words);

}  // namespace vitbit::swar
