// Deterministic fault injection for the serving simulator: seeded replica
// failure/recovery schedules (MTBF/MTTR), transient per-batch failures,
// and multiplicative latency spikes, all drawn from common/rng.h streams
// so every fault lands at the same virtual microsecond on every host and
// at every --threads value. The server loop (serve/server.h) consumes the
// schedule as explicit events: a replica going down aborts its in-flight
// batch, failed batches requeue through a bounded retry budget with
// deadline-aware exponential backoff, and when live replicas fall below a
// threshold the server fails over to a cheaper fallback latency table —
// the capacity-aware strategy selection VitBit motivates (falling back
// between Tensor/INT/FP execution when one resource is saturated).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace vitbit::serve {

struct FaultConfig {
  // Seed of the fault-event streams, independent of the workload seed so
  // the same request trace can be replayed under different fault draws.
  std::uint64_t seed = 1;
  // Mean time between failures per replica, virtual seconds; 0 disables
  // replica failures entirely.
  double replica_mtbf_s = 0.0;
  // Mean time to recovery once a replica is down, virtual seconds.
  double replica_mttr_s = 0.05;
  // Probability that a dispatched batch fails transiently at completion
  // time (its requests take the retry path); 0 disables.
  double batch_failure_prob = 0.0;
  // Probability that a dispatched batch runs latency_spike_mult times
  // slower than the table latency (GC pause / thermal throttle / noisy
  // neighbor); 0 disables.
  double latency_spike_prob = 0.0;
  double latency_spike_mult = 4.0;
  // Retry budget per request: a request whose batch fails is requeued at
  // most this many times before it is shed.
  int max_retries = 2;
  // Backoff before the first retry; doubles on every subsequent attempt.
  // A retry whose backed-off requeue time would already exceed the
  // request's SLO deadline is shed instead of requeued.
  std::uint64_t retry_backoff_us = 1000;
  // Graceful degradation: when live replicas drop below this count the
  // server switches new dispatches to the fallback latency table until
  // enough replicas recover. 0 disables failover.
  int degrade_below_live = 0;

  // True when any fault process can fire (failures, batch faults, spikes).
  bool any_faults() const {
    return replica_mtbf_s > 0.0 || batch_failure_prob > 0.0 ||
           latency_spike_prob > 0.0;
  }
  void validate() const;
};

// The seeded fault-event source. Replica up/down schedules are independent
// per-replica streams (a pure function of (seed, replica index)), and
// batch fates are drawn from a separate stream in dispatch order — the
// event loop is single-threaded per sweep point, so the draw order is
// fixed. With all fault rates zero, no stream is ever consumed and the
// model reports every replica up forever.
class FaultModel {
 public:
  // Sentinel for "no scheduled transition".
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  FaultModel(const FaultConfig& cfg, int num_replicas);

  int num_replicas() const { return static_cast<int>(up_.size()); }
  bool up(int replica) const { return up_[static_cast<std::size_t>(replica)]; }
  int live() const;

  // Virtual time of `replica`'s next up/down flip (kNever when failures
  // are disabled). Transitions are strictly increasing per replica.
  std::uint64_t next_transition_us(int replica) const {
    return next_transition_us_[static_cast<std::size_t>(replica)];
  }
  // Applies the pending transition (up -> down or down -> up) and draws
  // the one after it from the replica's stream.
  void advance(int replica);

  // Dispatch-time fate of one batch. Draws are only taken from the stream
  // when the corresponding probability is nonzero, so zero-rate configs
  // leave the stream untouched.
  struct BatchFate {
    bool fail = false;
    bool spike = false;
  };
  BatchFate draw_batch_fate();

  // base_us scaled by latency_spike_mult, rounded, kept >= 1.
  std::uint64_t spiked_latency_us(std::uint64_t base_us) const;

  // Backed-off requeue delay for a request about to start retry attempt
  // `attempt` (1-based): retry_backoff_us << (attempt - 1), >= 1.
  std::uint64_t retry_delay_us(int attempt) const;

 private:
  FaultConfig cfg_;
  std::vector<bool> up_;
  std::vector<std::uint64_t> next_transition_us_;
  std::vector<Rng> replica_rng_;
  Rng batch_rng_;
};

}  // namespace vitbit::serve
