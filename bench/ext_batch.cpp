// Extension bench: batched ViT-Base inference. Larger batches enlarge the
// GEMMs (more blocks, better GPU fill); this sweeps the batch size and
// reports throughput and VitBit's advantage at each point. Latencies come
// from the same memoized per-batch-size table builder the serving tiers
// and the model registry use (serve/server.h), so the bench and the
// simulators can never disagree about what a batch costs.
#include <cstdint>
#include <iostream>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/table.h"
#include "nn/vit_model.h"
#include "serve/server.h"
#include "vitbit/pipeline.h"

namespace vitbit {
namespace {

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  const arch::OrinSpec spec;
  const auto& calib = arch::default_calibration();
  auto pool = bench::make_pool(cli);
  const core::StrategyConfig cfg;

  Table t("Extension — batch-size sweep, ViT-Base");
  t.header({"batch", "TC (ms)", "VitBit (ms)", "VitBit speedup",
            "TC img/s", "VitBit img/s"});
  const std::vector<int> batches = {1, 2, 4, 8, 16, 32};
  // One shared builder call covers both strategies at every batch size
  // up to the sweep's largest, fanned out over the pool.
  const auto model = nn::vit_base();
  const auto tables = serve::build_latency_tables_from_logs(
      [&model](int b) { return nn::build_kernel_log(model, b); },
      {core::Strategy::kTC, core::Strategy::kVitBit}, cfg, spec, calib,
      batches.back(), &pool);
  const auto& tc = tables[0];
  const auto& vb = tables[1];
  for (const int batch : batches) {
    const auto tc_us = tc.latency_us(batch);
    const auto vb_us = vb.latency_us(batch);
    t.row()
        .cell(std::int64_t{batch})
        .cell(tc_us / 1000.0, 3)
        .cell(vb_us / 1000.0, 3)
        .cell(static_cast<double>(tc_us) / static_cast<double>(vb_us), 2)
        .cell(1e6 * batch / static_cast<double>(tc_us), 1)
        .cell(1e6 * batch / static_cast<double>(vb_us), 1);
  }
  bench::emit(t, cli);
  std::cout << "\nBatching amortizes kernel-launch overhead and fills the\n"
               "grid; VitBit's co-scheduling gain persists across batch\n"
               "sizes (the paper evaluates batch 1 only).\n";
  return 0;
}

}  // namespace
}  // namespace vitbit

int main(int argc, char** argv) {
  return vitbit::bench::guarded_main(argc, argv, vitbit::run);
}
