// The one global virtual-time event loop behind every serving tier: the
// single-shard scheduler (serve/sched), the classic fleet
// (serve/cluster.h simulate_fleet), and the class-aware scheduled fleet
// (simulate_fleet_sched). Extracted so the determinism contract is
// enforced in exactly one place: shards step in index order at every
// timestamp (begin_step, then autoscale decisions, then arrivals routed
// on live loads, then due retries, then dispatch), and time advances to
// the earliest next event anywhere. A tier with no retries or timers
// exposes no-op hooks and the loop degenerates to the tier's original
// event sequence byte for byte — sched_test and the committed
// fleet_sweep / sched_sweep baselines pin that equivalence.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "serve/workload.h"

namespace vitbit::serve {

// Drives `shards` against `source` until the stream is drained and every
// shard is idle; returns the makespan (the largest timestamp reached).
// `Source` exposes has_next / peek_arrival_us / next; `Shard` exposes
// begin_step / maybe_autoscale / admit / admit_due_retries / dispatch /
// next_internal_event_us / next_timer_us / idle / load; `route_fn` maps
// (request, live per-shard loads) to a destination shard index. Loads are
// recomputed before every routing decision, so load-coupled policies see
// the effect of each admission on the next. Shards are NOT finalized —
// the caller owns finalize order and per-shard span choices.
template <typename Source, typename Shard, typename RouteFn>
std::uint64_t drive_fleet_loop(Source& source,
                               const std::vector<Shard*>& shards,
                               RouteFn&& route_fn) {
  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  const auto n = shards.size();
  std::vector<std::size_t> loads(n);
  std::uint64_t now = 0;
  std::uint64_t end = 0;
  while (true) {
    for (auto* sh : shards) sh->begin_step(now);
    for (auto* sh : shards) sh->maybe_autoscale(now);
    while (source.has_next() && source.peek_arrival_us() <= now) {
      const Request r = source.next();
      for (std::size_t s = 0; s < n; ++s) loads[s] = shards[s]->load();
      shards[static_cast<std::size_t>(route_fn(r, loads))]->admit(now, r);
    }
    for (auto* sh : shards) sh->admit_due_retries(now);
    for (auto* sh : shards) sh->dispatch(now);

    std::uint64_t t_next = kNever;
    for (auto* sh : shards)
      t_next = std::min(t_next, sh->next_internal_event_us());
    if (source.has_next()) t_next = std::min(t_next, source.peek_arrival_us());
    bool all_idle = true;
    for (auto* sh : shards)
      if (!sh->idle()) {
        all_idle = false;
        break;
      }
    if (!source.has_next() && all_idle) break;  // drained
    // Fault and autoscale timers only keep the loop alive while work
    // remains somewhere in the fleet.
    for (auto* sh : shards) t_next = std::min(t_next, sh->next_timer_us());
    VITBIT_CHECK_MSG(t_next != kNever && t_next > now,
                     "fleet loop failed to advance");
    now = t_next;
    end = std::max(end, now);
  }
  return end;
}

}  // namespace vitbit::serve
