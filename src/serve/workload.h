// Reproducible request streams for the serving simulator. A workload is a
// sorted vector of arrival timestamps in integer virtual microseconds,
// generated from common/rng.h alone (no <random>), so the same
// (kind, rate, duration, seed) tuple produces the same bytes on every
// host and at every --threads value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace vitbit::serve {

// The three arrival processes:
//   kPoisson  memoryless inter-arrivals at rate_rps (the classic open-loop
//             serving assumption)
//   kUniform  jittered-uniform inter-arrivals in [0.5, 1.5) / rate_rps —
//             same mean rate, bounded burstiness
//   kBursty   on/off-modulated Poisson: exponential on/off phases with
//             means burst_on_s / burst_off_s; the on-phase rate is scaled
//             so the long-run average stays rate_rps
enum class ArrivalKind { kPoisson, kUniform, kBursty };

const char* arrival_kind_name(ArrivalKind kind);
// Accepts "poisson" | "uniform" | "bursty"; throws CheckError otherwise.
ArrivalKind arrival_kind_from_name(const std::string& name);

struct WorkloadConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_rps = 200.0;  // long-run mean arrival rate, requests/s
  double duration_s = 1.0;  // stream length in virtual seconds
  std::uint64_t seed = 1;
  // Bursty-process phase means (ignored by the other kinds).
  double burst_on_s = 0.02;
  double burst_off_s = 0.08;
};

struct Request {
  std::uint64_t id = 0;
  std::uint64_t arrival_us = 0;
  // Completed retry attempts so far; 0 for fresh arrivals, incremented
  // each time the retry path (serve/faults.h) requeues the request.
  int attempt = 0;
  // Priority class and zoo model of the request (serve/sched). Single-
  // class single-model paths leave both 0, so pre-scheduler workloads are
  // unchanged byte for byte.
  int cls = 0;
  int model = 0;
};

// Arrival times are nondecreasing; ids are sequential from 0.
std::vector<Request> generate_workload(const WorkloadConfig& cfg);

// Streaming form of generate_workload: yields the identical request
// sequence one arrival at a time, holding O(1) state instead of the whole
// vector. The fleet tier (serve/cluster.h) consumes arrivals through this
// so a 10^7-request sweep never materializes a multi-hundred-MB workload
// — generate_workload() is itself implemented by draining a stream, so
// the two can never diverge.
class WorkloadStream {
 public:
  explicit WorkloadStream(const WorkloadConfig& cfg);

  // True while next() has another request to yield.
  bool has_next() const { return has_next_; }
  // Arrival time of the pending request; has_next() must be true.
  std::uint64_t peek_arrival_us() const;
  // Yields the pending request and advances; has_next() must be true.
  Request next();

 private:
  void advance();

  WorkloadConfig cfg_;
  Rng rng_;
  double on_rate_ = 0.0;  // bursty on-phase rate (kBursty only)
  double now_s_ = 0.0;
  bool on_ = true;            // bursty phase flag
  double phase_end_s_ = 0.0;  // bursty phase boundary
  std::uint64_t next_id_ = 0;
  bool has_next_ = false;
  Request pending_;
};

// One priority class's traffic in a mixed multi-tenant stream: its own
// arrival process (a bursty tenant next to smooth Poisson neighbors), its
// share of the total offered rate, and its per-model mix over the zoo.
struct ClassTraffic {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_share = 1.0;  // share of MixedWorkloadConfig::rate_rps (> 0)
  double burst_on_s = 0.02;   // bursty phase means (kBursty only)
  double burst_off_s = 0.08;
  // Per-model weights over [0, num_models); normalized at use. Empty
  // means "all traffic on model 0".
  std::vector<double> model_mix;
};

struct MixedWorkloadConfig {
  std::vector<ClassTraffic> classes = {ClassTraffic{}};
  double rate_rps = 200.0;  // total offered rate summed over classes
  double duration_s = 1.0;
  std::uint64_t seed = 1;
  int num_models = 1;

  void validate() const;
};

// Merge of per-class WorkloadStreams in (arrival time, class index)
// order, with per-request model assignment drawn from an independent
// per-class stream. Each class's arrivals and model draws are pure
// functions of (seed, class index) — adding a class or a model never
// perturbs another class's sequence — and ids are sequential in merged
// arrival order, so the stream is byte-identical at every --threads
// value. O(num_classes) state, like WorkloadStream.
class MixedWorkloadStream {
 public:
  explicit MixedWorkloadStream(const MixedWorkloadConfig& cfg);

  bool has_next() const;
  // Arrival time of the earliest pending request; has_next() required.
  std::uint64_t peek_arrival_us() const;
  // Yields the earliest pending request (ties: lowest class index) with
  // cls/model filled in and a merged sequential id.
  Request next();

 private:
  struct PerClass {
    WorkloadStream stream;
    Rng model_rng;
    std::vector<double> cum_mix;  // cumulative normalized model mix
  };

  std::size_t pick() const;  // earliest pending class; has_next() required

  std::vector<PerClass> classes_;
  std::uint64_t next_id_ = 0;
};

// Drains a MixedWorkloadStream into a vector (small sweeps and tests).
std::vector<Request> generate_mixed_workload(const MixedWorkloadConfig& cfg);

}  // namespace vitbit::serve
