// Accumulation-tile policies: how many GEMM k-steps may accumulate into a
// packed register before lanes must be spilled to full-width accumulators.
//
//  * kFixedPeriod — spill every `fixed_period` steps. This is the paper's
//    implicit accounting (it assumes the reserved product space suffices);
//    exact only if the data keeps partial sums within lane fields, so the
//    packed GEMM tracks violations ("overflow tiles").
//  * kAdaptive — per output row, cut tiles from the *static* scalar
//    (weight) values so that max|lane value| * sum_tile|scalar| provably
//    fits every lane field. Exact for any input, no runtime checks needed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "swar/layout.h"

namespace vitbit::swar {

enum class TileMode { kFixedPeriod, kAdaptive };

struct TilePolicy {
  TileMode mode = TileMode::kAdaptive;
  int fixed_period = 32;
};

// Tile end indices (exclusive, strictly increasing, last == k_total) for one
// scalar row. In adaptive mode, `scalar_row` are the weights multiplied
// against the packed operand; in fixed mode only its length is used.
std::vector<int> tile_boundaries(std::span<const std::int32_t> scalar_row,
                                 const LaneLayout& layout,
                                 const TilePolicy& policy);

// Mean tile length over the given boundaries (k_total / num_tiles).
double mean_tile_length(const std::vector<int>& boundaries);

}  // namespace vitbit::swar
