// Tiny --flag=value command-line parser for bench and example binaries.
// Unrecognized flags raise a CheckError so typos in sweep scripts fail loud.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vitbit {

class Cli {
 public:
  // Parses argv of the form: prog [--name=value | --bool-flag] ...
  // Positional arguments are collected in order.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Path given via --json=<path> (machine-readable output, emitted next to
  // the --csv console form); empty when the flag is absent. Every bench and
  // the CLI route their artifacts through this one flag name so CI tooling
  // can rely on it.
  std::string json_path() const { return get("json", ""); }

  // Host thread count given via --threads=N, defaulting to
  // ThreadPool::default_threads() (hardware_concurrency). Throws CheckError
  // on zero, negative, or non-numeric values — every binary shares the one
  // strict parse so `--threads=0` cannot silently serialize a sweep.
  int threads() const;

  // Returns the set of flags that were provided but never queried; benches
  // call this after parsing all flags to reject typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace vitbit
