// SSE4.1 full-tile microkernels — the 128-bit halves of the AVX2 kernels
// in gemm_simd_avx2.cpp; same bit-identity arguments (see that file), half
// the lane width. Compiled with -msse4.1 (_mm_mul_epi32 is SSE4.1); only
// called after runtime detection reports at least SSE4.1.
#include <smmintrin.h>

#include "tensor/gemm_simd_kernels.h"

namespace vitbit::detail {

void gemm_tile_int_sse(const std::int32_t* a, std::size_t lda,
                       const std::int32_t* bp, int kdim,
                       std::int64_t acc[kGemmMr][kGemmNr]) {
  static_assert(kGemmMr == 4 && kGemmNr == 8,
                "SSE int microkernel is written for 4x8 tiles");
  // Per row: j 0-3 and j 4-7 halves, each split into even/odd int64 pairs
  // for _mm_mul_epi32 (low-32-bit signed multiply per 64-bit lane).
  __m128i acc_e0[kGemmMr], acc_o0[kGemmMr], acc_e1[kGemmMr], acc_o1[kGemmMr];
  for (int i = 0; i < kGemmMr; ++i) {
    acc_e0[i] = _mm_setzero_si128();
    acc_o0[i] = _mm_setzero_si128();
    acc_e1[i] = _mm_setzero_si128();
    acc_o1[i] = _mm_setzero_si128();
  }
  for (int k = 0; k < kdim; ++k) {
    const std::int32_t* brow = bp + static_cast<std::size_t>(k) * kGemmNr;
    const __m128i b0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow));
    const __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + 4));
    const __m128i b0_odd = _mm_srli_epi64(b0, 32);
    const __m128i b1_odd = _mm_srli_epi64(b1, 32);
    for (int i = 0; i < kGemmMr; ++i) {
      const __m128i ai = _mm_set1_epi32(a[i * lda + k]);
      acc_e0[i] = _mm_add_epi64(acc_e0[i], _mm_mul_epi32(ai, b0));
      acc_o0[i] = _mm_add_epi64(acc_o0[i], _mm_mul_epi32(ai, b0_odd));
      acc_e1[i] = _mm_add_epi64(acc_e1[i], _mm_mul_epi32(ai, b1));
      acc_o1[i] = _mm_add_epi64(acc_o1[i], _mm_mul_epi32(ai, b1_odd));
    }
  }
  for (int i = 0; i < kGemmMr; ++i) {
    alignas(16) std::int64_t e0[2], o0[2], e1[2], o1[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(e0), acc_e0[i]);
    _mm_store_si128(reinterpret_cast<__m128i*>(o0), acc_o0[i]);
    _mm_store_si128(reinterpret_cast<__m128i*>(e1), acc_e1[i]);
    _mm_store_si128(reinterpret_cast<__m128i*>(o1), acc_o1[i]);
    for (int j = 0; j < 2; ++j) {
      acc[i][2 * j] += e0[j];
      acc[i][2 * j + 1] += o0[j];
      acc[i][4 + 2 * j] += e1[j];
      acc[i][4 + 2 * j + 1] += o1[j];
    }
  }
}

void gemm_tile_f32_sse(const float* a, std::size_t lda, const float* bp,
                       int kdim, double acc[kGemmMr][kGemmNr]) {
  static_assert(kGemmMr == 4 && kGemmNr == 8,
                "SSE f32 microkernel is written for 4x8 tiles");
  // Per row: 8 double accumulators as four 2-lane registers.
  __m128d accv[kGemmMr][4];
  for (int i = 0; i < kGemmMr; ++i)
    for (int q = 0; q < 4; ++q) accv[i][q] = _mm_setzero_pd();
  for (int k = 0; k < kdim; ++k) {
    const float* brow = bp + static_cast<std::size_t>(k) * kGemmNr;
    const __m128 b0 = _mm_loadu_ps(brow);
    const __m128 b1 = _mm_loadu_ps(brow + 4);
    const __m128d bd[4] = {
        _mm_cvtps_pd(b0), _mm_cvtps_pd(_mm_movehl_ps(b0, b0)),
        _mm_cvtps_pd(b1), _mm_cvtps_pd(_mm_movehl_ps(b1, b1))};
    for (int i = 0; i < kGemmMr; ++i) {
      const __m128d ai = _mm_set1_pd(static_cast<double>(a[i * lda + k]));
      for (int q = 0; q < 4; ++q)
        accv[i][q] = _mm_add_pd(accv[i][q], _mm_mul_pd(ai, bd[q]));
    }
  }
  // Tiles arrive zeroed; plain stores write the scalar-recurrence values.
  for (int i = 0; i < kGemmMr; ++i)
    for (int q = 0; q < 4; ++q) _mm_storeu_pd(&acc[i][2 * q], accv[i][q]);
}

}  // namespace vitbit::detail
