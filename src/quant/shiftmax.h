// Shiftmax (I-ViT): integer-only softmax built from shift-based exp and an
// integer divider — the attention-probability kernel of the quantized
// ViT-Base workload.
#pragma once

#include <cstdint>

#include "tensor/matrix.h"

namespace vitbit::quant {

// Row-wise integer softmax. `logits` carry `in_fb` fraction bits; the output
// holds probabilities with `out_bits` fraction bits (values in
// [0, 2^out_bits], each row summing to ~2^out_bits). Integer ops only.
MatrixI32 shiftmax(const MatrixI32& logits, int in_fb, int out_bits);

// Float reference for error measurement.
MatrixF32 softmax_ref(const MatrixF32& logits);

}  // namespace vitbit::quant
