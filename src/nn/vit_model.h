// Integer-only Vision Transformer (the paper's ViT-Base workload), plus an
// fp32 reference path over the same (dequantized) weights for parity checks.
#pragma once

#include <string>
#include <vector>

#include "nn/encoder.h"
#include "nn/vit_config.h"

namespace vitbit::nn {

struct VitModel {
  VitConfig cfg;
  QuantLinear patch_embed;   // patch_dim -> hidden
  MatrixI32 pos_embed;       // seq x hidden, int8 at activation scale
  std::vector<std::int32_t> cls_token;  // hidden, int8 at activation scale
  std::vector<EncoderLayer> layers;
  QuantLinear head;          // hidden -> num_classes
  int act_frac_bits = 4;
  // Activation bitwidth: 8 for the paper's INT8 evaluation; lower widths
  // (e.g. 4) exercise the packing policy's denser layouts (future work in
  // the paper, implemented here).
  int act_bits = 8;

  // Integer-only forward pass over already-extracted patches
  // (num_patches x patch_dim, real values). Returns class logits
  // (1 x num_classes, real values) and optionally records kernel calls.
  MatrixF32 forward(const MatrixF32& patches, const GemmFn& gemm,
                    KernelLog* log = nullptr) const;

  // fp32 reference over dequantized weights: identical graph, float math.
  MatrixF32 forward_f32(const MatrixF32& patches) const;
};

// `act_bits`/`weight_bits` select the quantization width (8 = paper setup).
VitModel random_vit(const VitConfig& cfg, std::uint64_t seed,
                    int act_bits = 8, int weight_bits = 8);

// Splits a (channels*image_size) x image_size image into
// num_patches x patch_dim rows (row-major patches, channel-minor).
MatrixF32 extract_patches(const MatrixF32& image_chw, const VitConfig& cfg);

// The kernel sequence one inference launches, from shapes alone — used by
// the timing pipeline so that ViT-Base figures never require a (slow)
// functional ViT-Base execution. `batch` images fuse batch-wise: GEMM row
// dimensions and elementwise extents scale by the batch size.
KernelLog build_kernel_log(const VitConfig& cfg, int batch = 1);

}  // namespace vitbit::nn
