#include "swar/packed_simd.h"

#include "common/check.h"

namespace vitbit::swar {

namespace {
// Mask selecting lane `lane`'s field bits.
std::uint32_t lane_mask(const LaneLayout& l, int lane) {
  const bool top = lane == l.num_lanes - 1;
  const int width = top ? l.top_field_bits() : l.field_bits;
  return low_mask32(width) << (lane * l.field_bits);
}

std::uint32_t get_lane(std::uint32_t a, const LaneLayout& l, int lane) {
  return (a & lane_mask(l, lane)) >> (lane * l.field_bits);
}

std::uint32_t require_unsigned_lanes(const LaneLayout& l) {
  VITBIT_CHECK_MSG(l.mode != LaneMode::kTopSigned,
                   "SWAR lane-wise ops require unsigned lane encodings");
  return 0;
}
}  // namespace

std::uint32_t swar_add(std::uint32_t a, std::uint32_t b,
                       const LaneLayout& l) {
  require_unsigned_lanes(l);
  const std::uint32_t r = a + b;
#ifndef NDEBUG
  for (int lane = 0; lane < l.num_lanes; ++lane) {
    const std::uint64_t sum = static_cast<std::uint64_t>(get_lane(a, l, lane)) +
                              get_lane(b, l, lane);
    const bool top = lane == l.num_lanes - 1;
    const int width = top ? l.top_field_bits() : l.field_bits;
    VITBIT_CHECK_MSG(sum <= low_mask64(width),
                     "swar_add lane " << lane << " overflow");
  }
#endif
  return r;
}

std::uint32_t swar_sub(std::uint32_t a, std::uint32_t b,
                       const LaneLayout& l) {
  require_unsigned_lanes(l);
#ifndef NDEBUG
  for (int lane = 0; lane < l.num_lanes; ++lane)
    VITBIT_CHECK_MSG(get_lane(a, l, lane) >= get_lane(b, l, lane),
                     "swar_sub lane " << lane << " borrow");
#endif
  return a - b;
}

std::uint32_t swar_scalar_mul(std::uint32_t a, std::uint32_t c,
                              const LaneLayout& l) {
  require_unsigned_lanes(l);
  const std::uint32_t r = a * c;
#ifndef NDEBUG
  for (int lane = 0; lane < l.num_lanes; ++lane) {
    const std::uint64_t prod =
        static_cast<std::uint64_t>(get_lane(a, l, lane)) * c;
    const bool top = lane == l.num_lanes - 1;
    const int width = top ? l.top_field_bits() : l.field_bits;
    VITBIT_CHECK_MSG(prod <= low_mask64(width),
                     "swar_scalar_mul lane " << lane << " overflow");
  }
#endif
  return r;
}

std::uint32_t swar_shift_right(std::uint32_t a, int s, const LaneLayout& l) {
  require_unsigned_lanes(l);
  VITBIT_CHECK(s >= 0 && s < l.field_bits);
  std::uint32_t keep = 0;
  for (int lane = 0; lane < l.num_lanes; ++lane) keep |= lane_mask(l, lane);
  // Shift the whole register, then clear the bits that crossed into the
  // lane below (each lane keeps only its own shifted field).
  std::uint32_t field_keep = 0;
  for (int lane = 0; lane < l.num_lanes; ++lane) {
    const bool top = lane == l.num_lanes - 1;
    const int width = top ? l.top_field_bits() : l.field_bits;
    field_keep |= (low_mask32(width) >> s) << (lane * l.field_bits);
  }
  (void)keep;
  return (a >> s) & field_keep;
}

std::uint32_t swar_mask_low(std::uint32_t a, int s, const LaneLayout& l) {
  require_unsigned_lanes(l);
  VITBIT_CHECK(s >= 0 && s <= l.field_bits);
  std::uint32_t m = 0;
  for (int lane = 0; lane < l.num_lanes; ++lane)
    m |= low_mask32(s) << (lane * l.field_bits);
  return a & m;
}

std::uint32_t swar_min_const(std::uint32_t a, std::uint32_t c,
                             const LaneLayout& l) {
  require_unsigned_lanes(l);
  std::uint32_t r = 0;
  for (int lane = 0; lane < l.num_lanes; ++lane) {
    const std::uint32_t v = get_lane(a, l, lane);
    r |= (v < c ? v : c) << (lane * l.field_bits);
  }
  return r;
}

std::uint64_t swar_lane_sum(std::uint32_t a, const LaneLayout& l) {
  require_unsigned_lanes(l);
  std::uint64_t sum = 0;
  for (int lane = 0; lane < l.num_lanes; ++lane) sum += get_lane(a, l, lane);
  return sum;
}

bool swar_lanes_within(std::uint32_t a, std::uint32_t max_value,
                       const LaneLayout& l) {
  for (int lane = 0; lane < l.num_lanes; ++lane)
    if (get_lane(a, l, lane) > max_value) return false;
  return true;
}

}  // namespace vitbit::swar
