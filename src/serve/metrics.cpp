#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vitbit::serve {

namespace {

// Rank selection over samples already in ascending order — the shared core
// of percentile_nearest_rank and finalize (which sorts once and indexes
// every percentile instead of re-sorting per call).
std::uint64_t percentile_sorted(const std::vector<std::uint64_t>& sorted,
                                double p) {
  VITBIT_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of [0, 100]");
  if (sorted.empty()) return 0;
  // ceil(p/100 * N), clamped to [1, N]; p = 0 maps to rank 1 (the minimum).
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  rank = std::max<std::size_t>(rank, 1);
  rank = std::min(rank, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

std::uint64_t percentile_nearest_rank(std::vector<std::uint64_t> samples,
                                      double p) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, p);
}

MetricsSink::MetricsSink(PercentileMode mode, std::uint64_t slo_us)
    : mode_(mode), slo_us_(slo_us) {}

void MetricsSink::on_queue_depth(std::uint64_t now_us, std::size_t depth) {
  VITBIT_CHECK_MSG(now_us >= last_depth_change_us_,
                   "queue-depth samples must be time-ordered");
  depth_integral_ += static_cast<std::uint64_t>(last_depth_) *
                     (now_us - last_depth_change_us_);
  last_depth_change_us_ = now_us;
  last_depth_ = depth;
  max_depth_ = std::max(max_depth_, static_cast<std::uint64_t>(depth));
}

void MetricsSink::on_batch(std::size_t size, std::uint64_t busy_us) {
  ++batches_;
  batched_requests_ += size;
  busy_us_ += busy_us;
}

void MetricsSink::on_completion(std::uint64_t arrival_us,
                                std::uint64_t done_us) {
  VITBIT_CHECK_MSG(done_us >= arrival_us, "completion precedes arrival");
  const std::uint64_t lat = done_us - arrival_us;
  ++completed_;
  if (mode_ == PercentileMode::kExact) {
    latencies_us_.push_back(lat);
    return;
  }
  sketch_.add(lat);
  if (slo_us_ > 0 && lat <= slo_us_) ++within_slo_;
}

std::uint64_t MetricsSink::running_p99_us() const {
  if (mode_ == PercentileMode::kSketch) return sketch_.percentile_us(99.0);
  return percentile_nearest_rank(latencies_us_, 99.0);
}

const LatencySketch& MetricsSink::sketch() const {
  VITBIT_CHECK_MSG(mode_ == PercentileMode::kSketch,
                   "sketch() is only available in kSketch mode");
  return sketch_;
}

const std::vector<std::uint64_t>& MetricsSink::latencies() const {
  VITBIT_CHECK_MSG(mode_ == PercentileMode::kExact,
                   "latencies() is only available in kExact mode");
  return latencies_us_;
}

ServeMetrics MetricsSink::finalize(int num_replicas, std::uint64_t end_us,
                                   std::uint64_t slo_us) const {
  VITBIT_CHECK(num_replicas >= 1);
  if (mode_ == PercentileMode::kSketch)
    VITBIT_CHECK_MSG(slo_us == slo_us_,
                     "finalize slo_us " << slo_us << " != the sink's "
                                        << slo_us_);
  ServeMetrics m;
  m.offered = offered_;
  m.completed = completed_;
  m.dropped = dropped_;
  m.batch_failures = batch_failures_;
  m.retries = retries_;
  m.requeued = requeued_;
  m.shed = shed_;
  m.failovers = failovers_;
  m.degraded_s = static_cast<double>(degraded_us_) / 1e6;
  m.batches = batches_;
  m.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batched_requests_) /
                          static_cast<double>(batches_);
  m.duration_s = static_cast<double>(end_us) / 1e6;
  m.drop_rate = offered_ == 0 ? 0.0
                              : static_cast<double>(dropped_) /
                                    static_cast<double>(offered_);
  m.max_queue_depth = max_depth_;
  m.busy_us = busy_us_;
  m.batched_requests = batched_requests_;
  m.end_us = end_us;
  m.replica_time_us = replica_time_us_ != 0
                          ? replica_time_us_
                          : static_cast<std::uint64_t>(num_replicas) * end_us;
  // The tail after the last depth change counts at that depth.
  m.depth_integral_us =
      depth_integral_ +
      static_cast<std::uint64_t>(last_depth_) *
          (end_us - std::min(last_depth_change_us_, end_us));
  if (end_us > 0) {
    m.mean_queue_depth = static_cast<double>(m.depth_integral_us) /
                         static_cast<double>(end_us);
    m.throughput_rps = static_cast<double>(m.completed) / m.duration_s;
    std::uint64_t within_slo = within_slo_;
    if (mode_ == PercentileMode::kExact) {
      within_slo = 0;
      for (const auto lat : latencies_us_)
        if (lat <= slo_us) ++within_slo;
    }
    m.within_slo = within_slo;
    m.goodput_rps = static_cast<double>(within_slo) / m.duration_s;
    m.utilization =
        replica_time_us_ != 0
            ? static_cast<double>(busy_us_) /
                  static_cast<double>(replica_time_us_)
            : static_cast<double>(busy_us_) /
                  (static_cast<double>(num_replicas) *
                   static_cast<double>(end_us));
  }
  if (mode_ == PercentileMode::kExact) {
    auto sorted = latencies_us_;
    std::sort(sorted.begin(), sorted.end());
    m.p50_us = percentile_sorted(sorted, 50.0);
    m.p90_us = percentile_sorted(sorted, 90.0);
    m.p95_us = percentile_sorted(sorted, 95.0);
    m.p99_us = percentile_sorted(sorted, 99.0);
    m.max_us = percentile_sorted(sorted, 100.0);
  } else {
    m.p50_us = sketch_.percentile_us(50.0);
    m.p90_us = sketch_.percentile_us(90.0);
    m.p95_us = sketch_.percentile_us(95.0);
    m.p99_us = sketch_.percentile_us(99.0);
    m.max_us = sketch_.max_us();
  }
  return m;
}

SinkGroup::SinkGroup(std::vector<std::uint64_t> slos_us, PercentileMode mode)
    : slos_us_(std::move(slos_us)) {
  sinks_.reserve(slos_us_.size());
  for (const auto slo : slos_us_) sinks_.emplace_back(mode, slo);
}

std::vector<ServeMetrics> SinkGroup::finalize(int num_replicas,
                                              std::uint64_t end_us) const {
  std::vector<ServeMetrics> out;
  out.reserve(sinks_.size());
  for (std::size_t i = 0; i < sinks_.size(); ++i)
    out.push_back(sinks_[i].finalize(num_replicas, end_us, slos_us_[i]));
  return out;
}

}  // namespace vitbit::serve
