// Metrics sink for the serving simulator: raw events from the event loop
// (admissions, drops, batch dispatches, completions, queue-depth changes)
// accumulate here and finalize into throughput, goodput, utilization,
// drop rate, time-weighted queue depth, and latency percentiles.
// Everything derives from integer virtual-microsecond timestamps, so the
// numbers are bit-identical across hosts and threads.
//
// Two percentile modes:
//   kExact   store every latency and sort once at finalize — exact
//            nearest-rank percentiles, O(completed) memory. The
//            single-server path (serve/server.h) and its committed
//            baselines use this.
//   kSketch  stream latencies through a P² sketch (serve/sketch.h) —
//            estimated percentiles, O(1) memory independent of the
//            request count. The fleet tier (serve/cluster.h) uses this so
//            sweeps reach 10^7+ requests; serve_sketch_test bounds the
//            estimation error against kExact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/sketch.h"

namespace vitbit::serve {

// Nearest-rank percentile: the ceil(p/100 * N)-th smallest sample
// (1-indexed); p = 0 selects the minimum. Empty samples yield 0 — the
// caller-visible convention for "no data", pinned by serve_metrics_test.
std::uint64_t percentile_nearest_rank(std::vector<std::uint64_t> samples,
                                      double p);

enum class PercentileMode { kExact, kSketch };

struct ServeMetrics {
  std::uint64_t offered = 0;    // arrivals presented to the admission queue
  std::uint64_t completed = 0;  // requests that finished a batch
  std::uint64_t dropped = 0;    // rejected at a full queue
  std::uint64_t batches = 0;
  // Fault-injection accounting (serve/faults.h); all zero when no fault
  // process is enabled. offered == completed + dropped + shed at drain.
  std::uint64_t batch_failures = 0;  // batches failed or aborted mid-flight
  std::uint64_t retries = 0;         // retry attempts scheduled
  std::uint64_t requeued = 0;        // retries that re-entered the queue
  std::uint64_t shed = 0;    // requests abandoned: deadline, budget, or a
                             // full queue at requeue time
  std::uint64_t failovers = 0;  // entries into degraded (fallback) mode
  double degraded_s = 0.0;      // virtual time spent in degraded mode
  double mean_batch_size = 0.0;
  double duration_s = 0.0;       // virtual makespan: t = 0 to the last event
  double throughput_rps = 0.0;   // completed / duration
  double goodput_rps = 0.0;      // completed within the SLO / duration
  double drop_rate = 0.0;        // dropped / offered
  double utilization = 0.0;      // busy replica-time / available replica-time
  double mean_queue_depth = 0.0;  // time-weighted over the makespan
  std::uint64_t max_queue_depth = 0;
  // Latency percentiles of completed requests (arrival to batch
  // completion), virtual microseconds: exact nearest-rank in kExact mode,
  // P²-estimated (exact max) in kSketch mode.
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
  // Raw accumulators behind the derived rates above, kept so the fleet
  // tier (serve/cluster.h) can aggregate shard metrics weighted by each
  // shard's virtual-time span instead of naively averaging the per-shard
  // ratios. Never serialized into reports.
  std::uint64_t within_slo = 0;        // completions within the SLO
  std::uint64_t busy_us = 0;           // summed replica busy time
  std::uint64_t replica_time_us = 0;   // available replica-time integral
  std::uint64_t depth_integral_us = 0;  // queue depth integral to end_us
  std::uint64_t batched_requests = 0;
  std::uint64_t end_us = 0;  // the makespan finalize() was given
};

class MetricsSink {
 public:
  // `slo_us` is the goodput latency target. kSketch needs it up front
  // (within-SLO counts accumulate per completion instead of in a finalize
  // pass over stored samples) — 0 there means goodput is not tracked and
  // finalizes to 0. kExact ignores it until finalize, where the value
  // passed there must match when both are provided.
  explicit MetricsSink(PercentileMode mode = PercentileMode::kExact,
                       std::uint64_t slo_us = 0);

  void on_offered() { ++offered_; }
  void on_drop() { ++dropped_; }
  // Queue depth changed at `now_us` (admission or batch formation).
  void on_queue_depth(std::uint64_t now_us, std::size_t depth);
  void on_batch(std::size_t size, std::uint64_t busy_us);
  void on_completion(std::uint64_t arrival_us, std::uint64_t done_us);
  // Fault-path events (serve/faults.h).
  void on_batch_failure() { ++batch_failures_; }
  void on_retry() { ++retries_; }
  void on_requeue() { ++requeued_; }
  void on_shed() { ++shed_; }
  void on_failover() { ++failovers_; }
  void add_degraded_us(std::uint64_t us) { degraded_us_ += us; }
  // Available replica-time (replica count integrated over virtual time).
  // The server loop reports it at finalize; autoscaling shards accumulate
  // it piecewise as the enabled-replica count changes.
  void add_replica_time_us(std::uint64_t us) { replica_time_us_ += us; }

  // `end_us` is the simulation makespan; `slo_us` the goodput latency
  // target. Zero-duration runs finalize to all-zero rates. When
  // replica-time was never reported via add_replica_time_us, it defaults
  // to num_replicas * end_us (the fixed-fleet case).
  ServeMetrics finalize(int num_replicas, std::uint64_t end_us,
                        std::uint64_t slo_us) const;

  PercentileMode mode() const { return mode_; }
  // Running p99 estimate over completions so far — the autoscaler's
  // optional latency trigger. P² estimate in kSketch mode; exact
  // nearest-rank (a sort per call) in kExact mode.
  std::uint64_t running_p99_us() const;
  // Number of raw latency samples held — completed-request count in
  // kExact mode, always 0 in kSketch mode (the constant-memory claim the
  // fleet tests assert).
  std::size_t retained_latency_samples() const { return latencies_us_.size(); }
  // The streaming sketch (kSketch mode only) — the fleet tier merges
  // per-shard sketches in shard-index order.
  const LatencySketch& sketch() const;
  // The raw samples (kExact mode only) — the fleet tier concatenates them
  // in shard-index order for exact fleet percentiles.
  const std::vector<std::uint64_t>& latencies() const;

 private:
  PercentileMode mode_ = PercentileMode::kExact;
  std::uint64_t slo_us_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t batch_failures_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t requeued_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t degraded_us_ = 0;
  std::uint64_t replica_time_us_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_requests_ = 0;
  std::uint64_t busy_us_ = 0;
  // kExact: every completed-request latency. kSketch: unused (empty).
  std::vector<std::uint64_t> latencies_us_;
  // kSketch: streaming percentile state + incremental within-SLO count.
  LatencySketch sketch_;
  std::uint64_t completed_ = 0;
  std::uint64_t within_slo_ = 0;
  // Time-weighted queue-depth integral (depth * microseconds).
  std::uint64_t depth_integral_ = 0;
  std::uint64_t last_depth_change_us_ = 0;
  std::size_t last_depth_ = 0;
  std::uint64_t max_depth_ = 0;
};

// A fixed-size family of MetricsSinks with one SLO per member — the
// per-priority-class and per-model breakdowns the scheduler tier
// (serve/sched) keeps next to its total sink. Groups share the total
// sink's percentile mode, so a 10^6-request mixed-traffic sweep holds
// one P² sketch per class and per model instead of per-request samples.
// An SLO of 0 disables goodput tracking for that member (per-model
// groups: requests of different classes share a model, so no single
// latency target applies).
class SinkGroup {
 public:
  SinkGroup(std::vector<std::uint64_t> slos_us, PercentileMode mode);

  std::size_t size() const { return sinks_.size(); }
  MetricsSink& at(std::size_t i) { return sinks_[i]; }
  const MetricsSink& at(std::size_t i) const { return sinks_[i]; }

  // Finalizes every member against its own SLO. Per-member replica
  // counts are not meaningful (members share the replicas), so
  // utilization fields of the results are not: callers report only the
  // total sink's utilization.
  std::vector<ServeMetrics> finalize(int num_replicas,
                                     std::uint64_t end_us) const;

 private:
  std::vector<std::uint64_t> slos_us_;
  std::vector<MetricsSink> sinks_;
};

}  // namespace vitbit::serve
