#include "sim/launcher.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/int_math.h"
#include "sim/sm_sim.h"

namespace vitbit::sim {

OccupancyLimits occupancy_limits(const KernelSpec& kernel,
                                 const arch::OrinSpec& spec,
                                 const arch::RfCompressConfig& rf) {
  const int warps_per_block = static_cast<int>(kernel.block_warps.size());
  VITBIT_CHECK(warps_per_block >= 1);
  VITBIT_CHECK(warps_per_block * spec.warp_size <= spec.max_threads_per_block);
  OccupancyLimits lim;
  lim.by_blocks = spec.max_blocks_per_sm;
  lim.by_warps = spec.max_warps_per_sm / warps_per_block;
  lim.by_smem = kernel.smem_bytes > 0
                    ? spec.smem_bytes_per_sm / kernel.smem_bytes
                    : std::numeric_limits<int>::max();
  lim.effective_registers = arch::rf_effective_registers(spec, rf);
  const int regs_per_block =
      kernel.regs_per_thread * spec.warp_size * warps_per_block;
  lim.by_registers = regs_per_block > 0
                         ? lim.effective_registers / regs_per_block
                         : std::numeric_limits<int>::max();
  lim.blocks = lim.by_blocks;
  lim.limiter = "blocks";
  // min over the limits; ties go to the first (coarsest) resource so the
  // reported limiter is stable across sweeps.
  const auto tighten = [&lim](int value, const char* name) {
    if (value < lim.blocks) {
      lim.blocks = value;
      lim.limiter = name;
    }
  };
  tighten(lim.by_warps, "warps");
  tighten(lim.by_smem, "smem");
  tighten(lim.by_registers, "registers");
  VITBIT_CHECK_MSG(lim.blocks >= 1,
                   "kernel cannot fit on an SM: "
                       << warps_per_block << " warps, " << kernel.smem_bytes
                       << "B smem, " << kernel.regs_per_thread
                       << " regs/thread (effective RF "
                       << lim.effective_registers << ")");
  return lim;
}

int occupancy_blocks_per_sm(const KernelSpec& kernel,
                            const arch::OrinSpec& spec,
                            const arch::RfCompressConfig& rf) {
  return occupancy_limits(kernel, spec, rf).blocks;
}

namespace {
// Simulates one SM running `blocks` copies of the block.
SmStats simulate_sm(const KernelSpec& kernel, int blocks,
                    const arch::OrinSpec& spec,
                    const arch::Calibration& calib) {
  SmSim sm(spec, calib);
  for (int b = 0; b < blocks; ++b) sm.add_block(kernel.block_warps);
  return sm.run();
}
}  // namespace

LaunchResult launch_kernel(const KernelSpec& kernel,
                           const arch::OrinSpec& spec,
                           const arch::Calibration& calib,
                           const arch::RfCompressConfig& rf) {
  VITBIT_CHECK(kernel.grid_blocks >= 1);
  LaunchResult result;
  result.blocks_per_sm = occupancy_blocks_per_sm(kernel, spec, rf);
  result.total_cycles +=
      static_cast<std::uint64_t>(calib.kernel_launch_overhead_cycles);

  // Blocks the busiest SM executes over the kernel's lifetime.
  const int blocks_on_sm = ceil_div(kernel.grid_blocks, spec.num_sms);
  const int resident = std::min(result.blocks_per_sm, blocks_on_sm);
  result.resident_blocks = resident;
  result.grid_blocks = kernel.grid_blocks;
  result.waves = ceil_div(blocks_on_sm, resident);

  // Steady-state throughput extrapolation: real GPUs refill an SM as soon
  // as a block retires, so the SM sustains the per-block rate of a
  // fully-occupied simulation; whole-wave serialization would introduce
  // artificial quantization cliffs between strategies with different
  // occupancies.
  result.sm = simulate_sm(kernel, resident, spec, calib);
  const double scale =
      static_cast<double>(blocks_on_sm) / static_cast<double>(resident);
  result.total_cycles += static_cast<std::uint64_t>(
      static_cast<double>(result.sm.cycles) * scale);
  result.grid_instructions +=
      (result.sm.instructions_issued / static_cast<std::uint64_t>(resident)) *
      static_cast<std::uint64_t>(kernel.grid_blocks);
  return result;
}

}  // namespace vitbit::sim
