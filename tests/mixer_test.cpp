#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/mixer.h"
#include "tensor/gemm_ref.h"
#include "vitbit/executors.h"
#include "vitbit/pipeline.h"

namespace vitbit::nn {
namespace {

MatrixF32 random_patches(const MixerConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF32 p(cfg.num_patches(), cfg.patch_dim());
  for (auto& v : p.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return p;
}

TEST(Mixer, ConfigValidates) {
  EXPECT_NO_THROW(mixer_small().validate());
  EXPECT_NO_THROW(mixer_tiny().validate());
  MixerConfig bad;
  bad.patch_size = 15;
  EXPECT_THROW(bad.validate(), CheckError);
}

TEST(Mixer, ForwardProducesLogits) {
  const auto cfg = mixer_tiny();
  const auto model = random_mixer(cfg, 1);
  const auto logits = model.forward(random_patches(cfg, 2), reference_gemm());
  EXPECT_EQ(logits.rows(), 1);
  EXPECT_EQ(logits.cols(), cfg.num_classes);
}

TEST(Mixer, AllStrategiesBitIdentical) {
  const auto cfg = mixer_tiny();
  const auto model = random_mixer(cfg, 3);
  const auto patches = random_patches(cfg, 4);
  const auto baseline = model.forward(patches, reference_gemm());
  for (const auto s : core::all_strategies()) {
    const auto logits = model.forward(patches, core::make_gemm_executor(s));
    EXPECT_EQ(max_abs_diff(logits, baseline), 0.0) << core::strategy_name(s);
  }
}

TEST(Mixer, KernelLogMatchesStaticWalk) {
  const auto cfg = mixer_tiny();
  const auto model = random_mixer(cfg, 5);
  KernelLog dynamic;
  model.forward(random_patches(cfg, 6), reference_gemm(), &dynamic);
  const auto walk = build_mixer_kernel_log(cfg);
  ASSERT_EQ(dynamic.calls().size(), walk.calls().size());
  for (std::size_t i = 0; i < walk.calls().size(); ++i) {
    EXPECT_EQ(dynamic.calls()[i].name, walk.calls()[i].name);
    EXPECT_EQ(dynamic.calls()[i].m, walk.calls()[i].m) << walk.calls()[i].name;
    EXPECT_EQ(dynamic.calls()[i].k, walk.calls()[i].k) << walk.calls()[i].name;
    EXPECT_EQ(dynamic.calls()[i].n, walk.calls()[i].n) << walk.calls()[i].name;
    EXPECT_EQ(dynamic.calls()[i].elems, walk.calls()[i].elems)
        << walk.calls()[i].name;
  }
}

TEST(Mixer, SmallConfigScale) {
  const auto log = build_mixer_kernel_log(mixer_small());
  // 8 layers x 4 GEMMs + embed + head.
  EXPECT_EQ(log.count(KernelKind::kGemm), 34u);
  EXPECT_GT(log.total_macs(), std::int64_t{1} << 31);
}

TEST(Mixer, PipelineOrderingHolds) {
  const arch::OrinSpec spec;
  const auto& calib = arch::default_calibration();
  const auto log = build_mixer_kernel_log(mixer_small());
  core::StrategyConfig cfg;
  const auto tc = core::time_inference(log, core::Strategy::kTC, cfg, spec,
                                       calib);
  const auto vb = core::time_inference(log, core::Strategy::kVitBit, cfg,
                                       spec, calib);
  EXPECT_LT(vb.total_cycles, tc.total_cycles);
}

}  // namespace
}  // namespace vitbit::nn
