// Quantized linear layer: int8 activations x int8 weights -> int32
// accumulators -> requantized int8 output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/executor.h"
#include "nn/kernel_log.h"
#include "quant/qtensor.h"

namespace vitbit::nn {

struct QuantLinear {
  MatrixI32 weight;               // in_dim x out_dim, int8-range values
  std::vector<std::int32_t> bias; // per output, at accumulator scale
  int w_frac_bits = 6;

  int in_dim() const { return weight.rows(); }
  int out_dim() const { return weight.cols(); }

  // y = requant(x.q * weight + bias) at `out_fb` fraction bits, saturated
  // to `out_bits`-bit signed range (8 for the INT8 pipeline, 4 for the
  // low-bitwidth extension). Records a kGemm call when `log` is non-null.
  quant::QTensor forward(const quant::QTensor& x, int out_fb,
                         const GemmFn& gemm, KernelLog* log,
                         const std::string& name, int out_bits = 8) const;

  // Float view of the layer for the fp32 reference path.
  MatrixF32 weight_f32() const;
  std::vector<float> bias_f32(int x_frac_bits) const;
};

// Gaussian int8 weights (sigma in integer steps) and small biases —
// the distribution shape of trained, symmetric-quantized DNN weights.
QuantLinear random_linear(Rng& rng, int in_dim, int out_dim,
                          int w_frac_bits = 6, double weight_sigma = 14.0);

}  // namespace vitbit::nn
