#include "nn/encoder.h"

#include "common/int_math.h"
#include "quant/ilayernorm.h"
#include "quant/shift_gelu.h"

namespace vitbit::nn {

quant::QTensor residual_add(const quant::QTensor& a, const quant::QTensor& b,
                            KernelLog* log, const std::string& name,
                            int act_bits) {
  VITBIT_CHECK(a.frac_bits == b.frac_bits);
  VITBIT_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  quant::QTensor out;
  out.frac_bits = a.frac_bits;
  out.q = MatrixI32(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.q.size(); ++i)
    out.q.flat()[i] = static_cast<std::int32_t>(clamp_signed(
        static_cast<std::int64_t>(a.q.flat()[i]) + b.q.flat()[i], act_bits));
  if (log)
    log->add({KernelKind::kAdd, name, 0, 0, 0, 1,
              static_cast<std::int64_t>(out.q.size())});
  return out;
}

quant::QTensor layer_norm(const quant::QTensor& x, KernelLog* log,
                          const std::string& name, int act_bits) {
  quant::QTensor out;
  out.frac_bits = x.frac_bits;
  out.q = quant::ilayernorm(x.q, x.frac_bits);
  for (auto& v : out.q.flat())
    v = static_cast<std::int32_t>(clamp_signed(v, act_bits));
  if (log)
    log->add({KernelKind::kLayerNorm, name, 0, 0, 0, 1,
              static_cast<std::int64_t>(out.q.size())});
  return out;
}

quant::QTensor dropout(const quant::QTensor& x, KernelLog* log,
                       const std::string& name) {
  if (log)
    log->add({KernelKind::kDropout, name, 0, 0, 0, 1,
              static_cast<std::int64_t>(x.q.size())});
  return x;
}

quant::QTensor EncoderLayer::forward(const quant::QTensor& x,
                                     const GemmFn& gemm, KernelLog* log,
                                     const std::string& name,
                                     int act_bits) const {
  const auto ln1 = layer_norm(x, log, name + ".ln1", act_bits);
  const auto att = attn.forward(ln1, gemm, log, name + ".attn", act_bits);
  const auto att_d = dropout(att, log, name + ".drop1");
  const auto h = residual_add(x, att_d, log, name + ".add1", act_bits);

  const auto ln2 = layer_norm(h, log, name + ".ln2", act_bits);
  auto mid =
      fc1.forward(ln2, ln2.frac_bits, gemm, log, name + ".fc1", act_bits);
  mid.q = quant::shift_gelu(mid.q, mid.frac_bits);
  for (auto& v : mid.q.flat())
    v = static_cast<std::int32_t>(clamp_signed(v, act_bits));
  if (log)
    log->add({KernelKind::kGelu, name + ".gelu", 0, 0, 0, 1,
              static_cast<std::int64_t>(mid.q.size())});
  const auto out =
      fc2.forward(mid, x.frac_bits, gemm, log, name + ".fc2", act_bits);
  const auto out_d = dropout(out, log, name + ".drop2");
  return residual_add(h, out_d, log, name + ".add2", act_bits);
}

EncoderLayer random_encoder_layer(Rng& rng, const VitConfig& cfg) {
  EncoderLayer l;
  l.attn = random_attention(rng, cfg);
  l.fc1 = random_linear(rng, cfg.hidden_dim, cfg.mlp_dim);
  l.fc2 = random_linear(rng, cfg.mlp_dim, cfg.hidden_dim);
  return l;
}

}  // namespace vitbit::nn
