// Lane-exactness of the span (bulk) SWAR kernels (swar/packed_span.h):
// every span op must equal the per-word scalar primitive lane for lane, at
// every SIMD tier, for every layout — the AVX2-vectorized uniform layouts
// (2x16, 4x8) and the always-scalar 3x10 — and every signedness mode.
// VITBIT_SIMD_LEVEL flips the implementation, never the answer, so each
// test runs its assertions under none, sse, and avx2 overrides.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "swar/layout.h"
#include "swar/pack.h"
#include "swar/packed_simd.h"
#include "swar/packed_span.h"
#include "tensor/matrix.h"
#include "tensor/simd_level.h"

namespace vitbit::swar {
namespace {

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { set_simd_level_override(level); }
  ~ScopedSimdLevel() { clear_simd_level_override(); }
};

constexpr SimdLevel kAllLevels[] = {SimdLevel::kNone, SimdLevel::kSse,
                                    SimdLevel::kAvx2};
constexpr LaneMode kAllModes[] = {LaneMode::kUnsigned, LaneMode::kOffset,
                                  LaneMode::kTopSigned};

// The layouts under test: both AVX2-vectorizable uniform layouts plus the
// non-uniform 3x10, which must take the scalar path at every tier.
std::vector<LaneLayout> test_layouts(LaneMode mode) {
  return {paper_policy_layout(8, mode), paper_policy_layout(5, mode),
          paper_policy_layout(4, mode)};
}

// n raw values spanning the layout's full range (fill_uniform keeps them
// in [value_min, value_max], so packing never throws).
MatrixI32 random_values(int n, const LaneLayout& l, std::uint64_t seed) {
  MatrixI32 m(1, n);
  Rng rng(seed);
  fill_uniform(m, rng, static_cast<int>(l.value_min()),
               static_cast<int>(l.value_max()));
  return m;
}

// Packs values word by word through the scalar pack_lanes oracle,
// zero-value-padding the final partial group — the behaviour pack_span
// promises.
std::vector<std::uint32_t> pack_oracle(std::span<const std::int32_t> v,
                                       const LaneLayout& l) {
  const int L = l.num_lanes;
  std::vector<std::uint32_t> words((v.size() + L - 1) / L);
  std::vector<std::int32_t> group(L);
  for (std::size_t w = 0; w < words.size(); ++w) {
    for (int lane = 0; lane < L; ++lane) {
      const std::size_t i = w * L + lane;
      group[lane] = i < v.size() ? v[i] : 0;
    }
    words[w] = pack_lanes(group, l);
  }
  return words;
}

TEST(PackSpan, MatchesPackLanesAtEveryTier) {
  for (const LaneMode mode : kAllModes) {
    for (const LaneLayout& l : test_layouts(mode)) {
      // 37 is not a multiple of 2, 3, or 4: the tail word is always
      // partial, and 37 values cover several full vector blocks for 2x16.
      const auto vals = random_values(37, l, 31);
      const auto want = pack_oracle(vals.row(0), l);
      for (const SimdLevel level : kAllLevels) {
        ScopedSimdLevel force(level);
        std::vector<std::uint32_t> got(want.size());
        pack_span(vals.row(0), l, got);
        EXPECT_EQ(got, want)
            << l.to_string() << " at " << simd_level_name(level);
      }
    }
  }
}

TEST(PackSpan, RangeViolationThrowsEverywhere) {
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force(level);
    const LaneLayout l = paper_policy_layout(8, LaneMode::kTopSigned);
    std::vector<std::int32_t> v(16, 0);
    std::vector<std::uint32_t> out(8);
    // Violation inside a full vector block...
    v[3] = static_cast<std::int32_t>(l.value_max()) + 1;
    EXPECT_THROW(pack_span(v, l, out), CheckError) << simd_level_name(level);
    // ...and in the scalar tail.
    v[3] = 0;
    std::vector<std::int32_t> tail(5, 0);
    std::vector<std::uint32_t> tail_out(3);
    tail[4] = static_cast<std::int32_t>(l.value_min()) - 1;
    EXPECT_THROW(pack_span(tail, l, tail_out), CheckError)
        << simd_level_name(level);
  }
}

TEST(UnpackSpan, RoundTripsAtEveryTier) {
  for (const LaneMode mode : kAllModes) {
    for (const LaneLayout& l : test_layouts(mode)) {
      const auto vals = random_values(41, l, 32);
      std::vector<std::uint32_t> words((41 + l.num_lanes - 1) / l.num_lanes);
      for (const SimdLevel level : kAllLevels) {
        ScopedSimdLevel force(level);
        pack_span(vals.row(0), l, words);
        std::vector<std::int32_t> back(41);
        unpack_span(words, l, back);
        for (int i = 0; i < 41; ++i)
          ASSERT_EQ(back[i], vals.at(0, i))
              << l.to_string() << " at " << simd_level_name(level)
              << " index " << i;
        // The padding lanes of the final partial word decode to value 0.
        std::vector<std::int32_t> full(words.size() * l.num_lanes);
        unpack_span(words, l, full);
        for (std::size_t i = 41; i < full.size(); ++i)
          ASSERT_EQ(full[i], 0) << l.to_string();
      }
    }
  }
}

// Word operands whose lanes are small non-negative raw values, so every
// per-lane debug check in the scalar primitives (no field overflow on add
// and scalar-mul, no borrow on sub) is satisfied by construction:
// a's raw lanes are vb + d with d >= 0, hence encoded lanes of a dominate
// encoded lanes of b in every mode.
struct OperandPair {
  std::vector<std::uint32_t> a, b;
};

OperandPair small_operands(int n_words, const LaneLayout& l,
                           std::uint64_t seed) {
  const int n = n_words * l.num_lanes;
  MatrixI32 vb(1, n), d(1, n);
  Rng rng(seed);
  fill_uniform(vb, rng, 0, 3);
  fill_uniform(d, rng, 0, 3);
  MatrixI32 va(1, n);
  for (int i = 0; i < n; ++i) va.at(0, i) = vb.at(0, i) + d.at(0, i);
  OperandPair p;
  p.a.resize(n_words);
  p.b.resize(n_words);
  pack_span(va.row(0), l, p.a);
  pack_span(vb.row(0), l, p.b);
  return p;
}

TEST(SwarSpanOps, LaneExactAgainstScalarPrimitives) {
  constexpr int kWords = 19;  // two full AVX2 blocks plus a ragged tail
  // Lane-wise ops require unsigned lane encodings (packed_simd.cpp), so
  // kTopSigned is excluded here and covered by TopSignedRejected below.
  for (const LaneMode mode : {LaneMode::kUnsigned, LaneMode::kOffset}) {
    for (const LaneLayout& l : test_layouts(mode)) {
      const auto p = small_operands(kWords, l, 33);
      for (const SimdLevel level : kAllLevels) {
        ScopedSimdLevel force(level);
        const std::string ctx =
            l.to_string() + " at " + simd_level_name(level);
        std::vector<std::uint32_t> r(kWords);
        swar_add_span(p.a, p.b, r, l);
        for (int i = 0; i < kWords; ++i)
          ASSERT_EQ(r[i], swar_add(p.a[i], p.b[i], l)) << ctx << " add " << i;
        swar_sub_span(p.a, p.b, r, l);
        for (int i = 0; i < kWords; ++i)
          ASSERT_EQ(r[i], swar_sub(p.a[i], p.b[i], l)) << ctx << " sub " << i;
        swar_scalar_mul_span(p.a, 3, r, l);
        for (int i = 0; i < kWords; ++i)
          ASSERT_EQ(r[i], swar_scalar_mul(p.a[i], 3, l))
              << ctx << " mul " << i;
        swar_shift_right_span(p.a, 2, r, l);
        for (int i = 0; i < kWords; ++i)
          ASSERT_EQ(r[i], swar_shift_right(p.a[i], 2, l))
              << ctx << " shr " << i;
        swar_mask_low_span(p.a, 3, r, l);
        for (int i = 0; i < kWords; ++i)
          ASSERT_EQ(r[i], swar_mask_low(p.a[i], 3, l)) << ctx << " mask " << i;
        swar_min_const_span(p.a, 5, r, l);
        for (int i = 0; i < kWords; ++i)
          ASSERT_EQ(r[i], swar_min_const(p.a[i], 5, l)) << ctx << " min " << i;
      }
    }
  }
}

TEST(SwarSpanOps, TopSignedRejectedAtEveryTier) {
  // The scalar primitives reject kTopSigned unconditionally; the span
  // forms must throw identically even when a release-mode vector path
  // would otherwise be taken.
  const LaneLayout l = paper_policy_layout(8, LaneMode::kTopSigned);
  std::vector<std::uint32_t> a(9, 0), b(9, 0), r(9);
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force(level);
    EXPECT_THROW(swar_add_span(a, b, r, l), CheckError)
        << simd_level_name(level);
    EXPECT_THROW(swar_sub_span(a, b, r, l), CheckError);
    EXPECT_THROW(swar_scalar_mul_span(a, 2, r, l), CheckError);
    EXPECT_THROW(swar_shift_right_span(a, 1, r, l), CheckError);
  }
}

TEST(SwarSpanOps, ResultMayAliasAnOperand) {
  const LaneLayout l = paper_policy_layout(4, LaneMode::kUnsigned);
  auto p = small_operands(11, l, 34);
  std::vector<std::uint32_t> want(11);
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force(level);
    auto a = p.a;
    swar_add_span(p.a, p.b, want, l);
    swar_add_span(a, p.b, a, l);  // r aliases a
    EXPECT_EQ(a, want) << simd_level_name(level);
  }
}

TEST(SwarSpanOps, MacSpanMatchesScalarLoopAtEveryTier) {
  // Wrapping uint32 MAC over arbitrary word patterns — including ones with
  // high bits set, where wraparound actually occurs. Exact mod 2^32, so
  // every tier must agree bit for bit.
  constexpr int kWords = 23;
  std::vector<std::uint32_t> words(kWords);
  std::uint32_t w = 0x12345u;
  for (auto& x : words) {
    w = w * 1664525u + 1013904223u;  // LCG: deterministic full-range words
    x = w;
  }
  const std::uint32_t enc = 0x9E3779B9u;
  std::vector<std::uint32_t> want(kWords, 7u);
  for (int i = 0; i < kWords; ++i) want[i] += enc * words[i];
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force(level);
    std::vector<std::uint32_t> acc(kWords, 7u);
    swar_mac_span(acc, enc, words);
    EXPECT_EQ(acc, want) << simd_level_name(level);
  }
}

TEST(SwarSpanOps, SizeMismatchThrows) {
  const LaneLayout l = paper_policy_layout(8, LaneMode::kTopSigned);
  std::vector<std::int32_t> v(5, 0);
  std::vector<std::uint32_t> wrong(2);  // needs ceil(5/2) == 3
  EXPECT_THROW(pack_span(v, l, wrong), CheckError);
  std::vector<std::uint32_t> a(4), b(3), r(4);
  EXPECT_THROW(swar_add_span(a, b, r, l), CheckError);
  EXPECT_THROW(swar_mac_span(r, 1u, b), CheckError);
}

}  // namespace
}  // namespace vitbit::swar
