#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/vit_model.h"
#include "tensor/gemm_ref.h"
#include "vitbit/executors.h"
#include "vitbit/fused_gemm.h"
#include "vitbit/pipeline.h"
#include "vitbit/preprocess.h"
#include "vitbit/tuner.h"

namespace vitbit::core {
namespace {

const arch::OrinSpec kSpec;
const arch::Calibration& kCalib = arch::default_calibration();

MatrixI32 random_i8(Rng& rng, int r, int c, double sigma = 14.0) {
  MatrixI32 m(r, c);
  fill_gaussian_clipped(m, rng, sigma, -127, 127);
  return m;
}

TEST(SplitWidths, MatchesAlgorithm1) {
  // N=100, m=4, n=2: N3 = 100*4/5 = 80; cuda = 20; N1 = 20*2/3 = 13 -> 12
  // (rounded to a packing group); N2 = 8.
  const auto w = split_widths(100, 4, 2);
  EXPECT_EQ(w.n3, 80);
  EXPECT_EQ(w.n1, 12);
  EXPECT_EQ(w.n2, 8);
  EXPECT_EQ(w.n1 % 2, 0);
}

TEST(SplitWidths, NoFpSliceGivesAllCudaToInt) {
  const auto w = split_widths(100, 4, 1, /*fp_slice=*/false);
  EXPECT_EQ(w.n3, 80);
  EXPECT_EQ(w.n1, 20);
  EXPECT_EQ(w.n2, 0);
}

TEST(SplitWidths, ZeroMRatioDisablesTensorSlice) {
  const auto w = split_widths(60, 0, 2);
  EXPECT_EQ(w.n3, 0);
  EXPECT_EQ(w.n1 + w.n2, 60);
  EXPECT_GT(w.n1, w.n2) << "Eq. 1: packed INT takes n of n+1 columns";
}

TEST(Preprocess, SlicesRoundTrip) {
  Rng rng(1);
  const auto b = random_i8(rng, 16, 50);
  const auto layout = swar::paper_policy_layout(8, swar::LaneMode::kTopSigned);
  const auto pre = input_preprocessing(b, 4, 2, layout);
  // B1 unpacks to the first n1 columns.
  const auto b1 = pre.b1.unpack();
  for (int r = 0; r < b.rows(); ++r) {
    for (int c = 0; c < pre.widths.n1; ++c)
      EXPECT_EQ(b1.at(r, c), b.at(r, c));
    for (int c = 0; c < pre.widths.n2; ++c)
      EXPECT_FLOAT_EQ(pre.b2.at(r, c),
                      static_cast<float>(b.at(r, pre.widths.n1 + c)));
    for (int c = 0; c < pre.widths.n3; ++c)
      EXPECT_EQ(pre.b3.at(r, c), b.at(r, pre.widths.n1 + pre.widths.n2 + c));
  }
}

TEST(Preprocess, WeightDuplication) {
  Rng rng(2);
  const auto a = random_i8(rng, 4, 6);
  const auto w = weight_preprocessing(a);
  EXPECT_EQ(w.a1, a);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(w.a2.flat()[i], static_cast<float>(a.flat()[i]));
}

TEST(FusedGemm, MatchesReferenceExactly) {
  Rng rng(3);
  const auto a = random_i8(rng, 8, 96);
  const auto b = random_i8(rng, 96, 40, 25.0);
  const auto layout = swar::paper_policy_layout(8, swar::LaneMode::kTopSigned);
  const auto weights = weight_preprocessing(a);
  const auto input = input_preprocessing(b, 4, 2, layout);
  FusedGemmStats stats;
  const auto c = vitbit_gemm(weights, input, {}, &stats);
  EXPECT_EQ(max_abs_diff(c, gemm_ref_int(a, b)), 0)
      << "fused execution must not change the result (accuracy claim)";
  EXPECT_GT(stats.packed.mac_instructions, 0);
  EXPECT_GT(stats.fp_macs, 0);
  EXPECT_GT(stats.tensor_macs, 0);
}

TEST(FusedGemm, FpSliceExactnessGuard) {
  // K * max|a| * max|b| beyond 2^24 must be refused, not silently wrong.
  MatrixI32 a(1, 2048, 127);
  MatrixI32 b(2048, 6, 127);
  const auto layout = swar::paper_policy_layout(8, swar::LaneMode::kTopSigned);
  const auto weights = weight_preprocessing(a);
  const auto input = input_preprocessing(b, 0, 2, layout);
  EXPECT_THROW(vitbit_gemm(weights, input), CheckError);
}

class ExecutorEquivalence : public ::testing::TestWithParam<Strategy> {};

TEST_P(ExecutorEquivalence, AllStrategiesProduceIdenticalResults) {
  const Strategy s = GetParam();
  Rng rng(4 + static_cast<int>(s));
  const auto a = random_i8(rng, 12, 64);
  const auto b = random_i8(rng, 64, 33, 30.0);
  const auto baseline = gemm_ref_int(a, b);
  const auto fn = make_gemm_executor(s);
  EXPECT_EQ(max_abs_diff(fn(a, b), baseline), 0) << strategy_name(s);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ExecutorEquivalence,
                         ::testing::ValuesIn(all_strategies()),
                         [](const auto& info) {
                           std::string s = strategy_name(info.param);
                           for (auto& ch : s)
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           return s;
                         });

TEST(Strategy, Table3Properties) {
  EXPECT_TRUE(uses_tensor_cores(Strategy::kTC));
  EXPECT_FALSE(uses_tensor_cores(Strategy::kICFC));
  EXPECT_TRUE(uses_packing(Strategy::kVitBit));
  EXPECT_FALSE(uses_packing(Strategy::kTCICFC));
  EXPECT_TRUE(uses_fp_cuda_cores(Strategy::kFC));
  EXPECT_FALSE(uses_fp_cuda_cores(Strategy::kTacker));
  EXPECT_EQ(all_strategies().size(), 7u);
  EXPECT_EQ(figure5_strategies().front(), Strategy::kTC);
  EXPECT_EQ(figure5_strategies().back(), Strategy::kVitBit);
}

TEST(Tuner, InitialStudyOrdering) {
  // The Section 3.2 ordering: TC < IC+FC+P < IC+FC < FC <= IC (approx).
  const trace::GemmShape shape{197, 768, 3072, 1};
  const auto study = run_initial_study(shape, kSpec, kCalib);
  EXPECT_LT(study.tc_cycles, study.icfcp_cycles);
  EXPECT_LT(study.icfcp_cycles, study.icfc_cycles);
  EXPECT_LT(study.icfc_cycles, study.ic_cycles);
  // Paper band: IC ~7.5x, IC+FC+P ~4x (we accept +-35%).
  EXPECT_NEAR(study.ratio_ic(), 7.5, 2.6);
  EXPECT_NEAR(study.ratio_icfcp(), 4.0, 1.4);
}

TEST(Tuner, DerivedMRatioNearPaper) {
  const trace::GemmShape shape{197, 768, 3072, 1};
  const auto study = run_initial_study(shape, kSpec, kCalib);
  const int m = derive_m_ratio(study);
  EXPECT_GE(m, 3);
  EXPECT_LE(m, 5);  // paper: 4
}

TEST(Tuner, FusedColsAreEq1Aligned) {
  const trace::GemmShape shape{197, 768, 768, 1};
  const int cols = tune_fused_cuda_cols(shape, 2, kSpec, kCalib);
  EXPECT_GT(cols, 0);
  EXPECT_EQ(cols % 3, 0);  // multiples of pack_factor+1
}

TEST(Pipeline, VitBitBeatsBaselinesOnViT) {
  // The headline orderings of Figure 5 on the full ViT-Base kernel log.
  const auto log = nn::build_kernel_log(nn::vit_base());
  StrategyConfig cfg;
  cfg.m_ratio = 4;
  cfg.fused_cuda_cols = 12;
  const auto tc = time_inference(log, Strategy::kTC, cfg, kSpec, kCalib);
  const auto tacker =
      time_inference(log, Strategy::kTacker, cfg, kSpec, kCalib);
  const auto tcicfc =
      time_inference(log, Strategy::kTCICFC, cfg, kSpec, kCalib);
  const auto vitbit =
      time_inference(log, Strategy::kVitBit, cfg, kSpec, kCalib);
  EXPECT_LT(vitbit.total_cycles, tcicfc.total_cycles);
  EXPECT_LT(tcicfc.total_cycles, tc.total_cycles);
  EXPECT_LT(tacker.total_cycles, tc.total_cycles);
  // Paper Figure 5: VitBit 1.22x over TC; accept a generous band.
  const double speedup = static_cast<double>(tc.total_cycles) /
                         static_cast<double>(vitbit.total_cycles);
  EXPECT_GT(speedup, 1.10);
  EXPECT_LT(speedup, 1.60);
}

TEST(Pipeline, InstructionCountDropsWithPacking) {
  // Figure 9: VitBit's packed kernels issue fewer instructions than IC+FC.
  const auto log = nn::build_kernel_log(nn::vit_base());
  StrategyConfig cfg;
  const auto icfc = time_inference(log, Strategy::kICFC, cfg, kSpec, kCalib);
  const auto vitbit =
      time_inference(log, Strategy::kVitBit, cfg, kSpec, kCalib);
  EXPECT_LT(vitbit.total_instructions, icfc.total_instructions);
}

TEST(Pipeline, DualPipeRaisesIpc) {
  // Figure 10: IC+FC IPC > IC IPC on the CUDA-core path.
  const auto log = nn::build_kernel_log(nn::vit_base());
  StrategyConfig cfg;
  const auto ic = time_inference(log, Strategy::kIC, cfg, kSpec, kCalib);
  const auto icfc = time_inference(log, Strategy::kICFC, cfg, kSpec, kCalib);
  EXPECT_GT(icfc.mean_ipc(), 1.15 * ic.mean_ipc());
}

TEST(Pipeline, KernelClassAccounting) {
  const auto log = nn::build_kernel_log(nn::vit_tiny());
  StrategyConfig cfg;
  const auto t = time_inference(log, Strategy::kTC, cfg, kSpec, kCalib);
  EXPECT_EQ(t.kernels.size(), log.calls().size());
  EXPECT_EQ(t.total_cycles, t.gemm_cycles + t.cuda_cycles);
  EXPECT_GT(t.gemm_cycles, 0u);
  EXPECT_GT(t.cuda_cycles, 0u);
}

TEST(Pipeline, CachedKernelsAreConsistent) {
  // 12 identical layers: every layerN.fc1 must time identically.
  const auto log = nn::build_kernel_log(nn::vit_base());
  StrategyConfig cfg;
  const auto t = time_inference(log, Strategy::kVitBit, cfg, kSpec, kCalib);
  std::uint64_t fc1 = 0;
  for (const auto& k : t.kernels) {
    if (k.name.find(".fc1") == std::string::npos) continue;
    if (fc1 == 0)
      fc1 = k.cycles;
    else
      EXPECT_EQ(k.cycles, fc1) << k.name;
  }
  EXPECT_GT(fc1, 0u);
}

}  // namespace
}  // namespace vitbit::core
