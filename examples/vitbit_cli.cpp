// vitbit_cli — one binary to drive the library's main entry points:
//
//   vitbit_cli study  [--m=197 --k=768 --n=3072]     Section 3.2 ratio study
//   vitbit_cli tune   [--m=197 --k=768 --n=3072]     derive m / fused slice
//   vitbit_cli infer  [--model=vit|cnn] [--strategy=VitBit] [--pack=2]
//   vitbit_cli layout [--bits=8]                     packing policy details
//   vitbit_cli report --json=out.json                machine-readable report
//   vitbit_cli serve  [--rates=... --policy=timeout] serving rate sweep
//
// Every subcommand accepts --threads=N (default: hardware_concurrency,
// 1 = serial) and --gemm=ref|blocked|simd to pick the host GEMM engine (same
// override as the VITBIT_GEMM env var; both engines are bit-identical).
// Simulated results are identical for every N.
#include <chrono>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/cli.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "nn/cnn.h"
#include "nn/vit_model.h"
#include "report/run_report.h"
#include "serve/cluster.h"
#include "serve/sched/sched.h"
#include "serve/server.h"
#include "sim/gpu_sim.h"
#include "swar/layout.h"
#include "tensor/gemm_dispatch.h"
#include "tensor/simd_level.h"
#include "trace/gemm_traces.h"
#include "vitbit/config_io.h"
#include "vitbit/pipeline.h"
#include "vitbit/timeline.h"
#include "vitbit/tuner.h"

namespace vitbit {
namespace {

const arch::OrinSpec kSpec;

int cmd_study(const Cli& cli, ThreadPool& pool) {
  const auto& calib = arch::default_calibration();
  trace::GemmShape shape{static_cast<int>(cli.get_int("m", 197)),
                         static_cast<int>(cli.get_int("k", 768)),
                         static_cast<int>(cli.get_int("n", 3072)), 1};
  const auto s = core::run_initial_study(shape, kSpec, calib, &pool);
  Table t("initial study (normalized to TC)");
  t.header({"TC", "IC", "FC", "IC+FC", "IC+FC+P"});
  t.row()
      .cell(1.0, 2)
      .cell(s.ratio_ic(), 2)
      .cell(s.ratio_fc(), 2)
      .cell(s.ratio_icfc(), 2)
      .cell(s.ratio_icfcp(), 2);
  t.print(std::cout);
  return 0;
}

int cmd_tune(const Cli& cli, ThreadPool& pool) {
  const auto& calib = arch::default_calibration();
  trace::GemmShape shape{static_cast<int>(cli.get_int("m", 197)),
                         static_cast<int>(cli.get_int("k", 768)),
                         static_cast<int>(cli.get_int("n", 3072)), 1};
  const auto cfg = core::tune_strategy_config(shape, kSpec, calib, &pool);
  std::cout << "derived Tensor:CUDA ratio m = " << cfg.m_ratio
            << "\nfused CUDA column slice   = " << cfg.fused_cuda_cols
            << "\npacking factor            = " << cfg.pack_factor << "\n";
  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    core::save_config_file(out, cfg);
    std::cout << "saved to " << out << "\n";
  }
  return 0;
}

int cmd_infer(const Cli& cli, ThreadPool& pool) {
  const auto& calib = arch::default_calibration();
  const std::string model = cli.get("model", "vit");
  const auto log = model == "cnn" ? nn::build_cnn_kernel_log(nn::cnn_edge())
                                  : nn::build_kernel_log(nn::vit_base());
  core::StrategyConfig cfg;
  const std::string cfg_path = cli.get("config", "");
  if (!cfg_path.empty()) cfg = core::load_config_file(cfg_path);
  cfg.pack_factor = static_cast<int>(cli.get_int("pack", cfg.pack_factor));
  const std::string want = cli.get("strategy", "");
  std::vector<core::Strategy> selected;
  for (const auto s : core::all_strategies())
    if (want.empty() || want == core::strategy_name(s)) selected.push_back(s);
  auto results = parallel_map(&pool, selected.size(), [&](std::size_t i) {
    return core::time_inference(log, selected[i], cfg, kSpec, calib, &pool);
  });

  Table t("inference timing — " + (model == "cnn" ? std::string("edge CNN")
                                                  : std::string("ViT-Base")));
  t.header({"method", "time (ms)", "energy (mJ)", "instructions"});
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const auto& r = results[i];
    t.row()
        .cell(core::strategy_name(selected[i]))
        .cell(r.total_ms(kSpec), 3)
        .cell(r.total_energy_mj, 2)
        .cell(r.total_instructions);
  }
  t.print(std::cout);
  if (cli.get_bool("timeline", false) && !results.empty()) {
    std::cout << "\n";
    core::render_comparison(std::cout, results, kSpec);
    std::cout << "\n";
    core::render_timeline(std::cout, results.back());
  }
  return 0;
}

// Times every strategy and writes the result as a schema-versioned JSON
// run report (report/run_report.h) — the machine-readable counterpart of
// `infer`, consumed by tools/check_regression and external dashboards.
int cmd_report(const Cli& cli, ThreadPool& pool) {
  const auto start = std::chrono::steady_clock::now();
  const auto& calib = arch::default_calibration();
  const std::string model = cli.get("model", "vit");
  auto vit_cfg = nn::vit_base();
  vit_cfg.num_layers =
      static_cast<int>(cli.get_int("layers", vit_cfg.num_layers));
  const auto log = model == "cnn" ? nn::build_cnn_kernel_log(nn::cnn_edge())
                                  : nn::build_kernel_log(vit_cfg);
  core::StrategyConfig cfg;
  cfg.pack_factor = static_cast<int>(cli.get_int("pack", cfg.pack_factor));
  const std::string want = cli.get("strategy", "");
  if (!want.empty()) {
    bool known = false;
    for (const auto s : core::all_strategies())
      known = known || want == core::strategy_name(s);
    VITBIT_CHECK_MSG(known, "unknown strategy: " << want);
  }

  report::RunReport rep;
  rep.tool = "vitbit_cli";
  rep.meta = report::build_metadata();
  rep.meta["model"] = model;
  if (model != "cnn")
    rep.meta["layers"] = std::to_string(vit_cfg.num_layers);
  rep.meta["pack_factor"] = std::to_string(cfg.pack_factor);
  rep.threads = pool.size();
  std::vector<core::Strategy> selected;
  for (const auto s : core::all_strategies())
    if (want.empty() || want == core::strategy_name(s)) selected.push_back(s);
  rep.strategies = parallel_map(&pool, selected.size(), [&](std::size_t i) {
    const auto r =
        core::time_inference(log, selected[i], cfg, kSpec, calib, &pool);
    return report::make_strategy_report(r, kSpec);
  });
  if (cli.get_bool("l2", false)) {
    // One addressed multi-SM L2 run per GEMM plan family, over a reduced
    // shape so the section stays cheap.
    const trace::GemmShape shape{197, 768,
                                 static_cast<int>(cli.get_int("l2-n", 256)),
                                 1};
    const std::vector<std::pair<const char*, trace::GemmBlockPlan>> rows = {
        {"tc", trace::plan_tc(calib)},
        {"vitbit", trace::plan_vitbit(calib, 12)}};
    rep.l2_runs = parallel_map(&pool, rows.size(), [&](std::size_t i) {
      const auto kernel =
          trace::build_gemm_kernel(shape, rows[i].second, kSpec, calib);
      const auto geom = trace::gemm_grid_geom(shape, rows[i].second, kSpec);
      sim::GpuSim gpu(kSpec, calib);
      const auto g = gpu.run(kernel, geom,
                             sim::occupancy_blocks_per_sm(kernel, kSpec));
      return report::make_l2_report(
          std::string("gemm_") + std::to_string(shape.m) + "x" +
              std::to_string(shape.k) + "x" + std::to_string(shape.n) + "_" +
              rows[i].first,
          g);
    });
  }
  rep.host_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::string out = cli.json_path();
  if (out.empty()) {
    // No path: print the document to stdout (pipe-friendly).
    report::to_json(rep).write(std::cout, 2);
    std::cout << "\n";
    return 0;
  }
  report::save_report_file(out, rep);
  // Self-check: the emitted artifact must round-trip through the reader
  // bit-identically before anything downstream trusts it.
  const auto back = report::load_report_file(out);
  VITBIT_CHECK_MSG(report::to_json(back) == report::to_json(rep),
                   "report round-trip mismatch: " << out);
  std::cout << "wrote " << out << " (schema v" << rep.schema_version << ", "
            << rep.strategies.size() << " strategies, " << rep.l2_runs.size()
            << " L2 runs)\n";
  return 0;
}

// Serving-simulator rate sweep (serve/server.h): open-loop arrivals into
// the dynamic batcher, TC vs VitBit goodput and tail latency per rate,
// with optional deterministic fault injection (serve/faults.h). --json
// writes the schema-versioned serve_points report.
int cmd_serve(const Cli& cli, ThreadPool& pool) {
  const auto start = std::chrono::steady_clock::now();
  const auto& calib = arch::default_calibration();
  // The one flag set shared with bench/serve_sim, validated on return.
  const auto cfg = serve::sweep_config_from_cli(cli);

  const auto points = serve::run_rate_sweep(cfg, kSpec, calib, &pool);
  serve::sweep_table(cfg, points).print(std::cout);

  const std::string out = cli.json_path();
  if (!out.empty()) {
    auto rep = serve::make_serve_report(cfg, points, "vitbit_cli",
                                        pool.size());
    rep.host_wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    report::save_report_file(out, rep);
    // Same self-check as `report`: the artifact must round-trip before
    // anything downstream trusts it.
    const auto back = report::load_report_file(out);
    VITBIT_CHECK_MSG(report::to_json(back) == report::to_json(rep),
                     "serve report round-trip mismatch: " << out);
    std::cout << "wrote " << out << " (" << rep.serve_points.size()
              << " sweep points)\n";
  }
  return 0;
}

// Fleet sweep (serve/cluster.h): the request stream routed across many
// shards under each balancing policy, with optional per-shard
// autoscaling. --json writes the schema-versioned fleet_points report.
int cmd_fleet(const Cli& cli, ThreadPool& pool) {
  const auto start = std::chrono::steady_clock::now();
  const auto& calib = arch::default_calibration();
  // The one flag set shared with bench/fleet_sim, validated on return.
  const auto cfg = serve::fleet_config_from_cli(cli);

  const auto points = serve::run_fleet_sweep(cfg, kSpec, calib, &pool);
  serve::fleet_table(cfg, points).print(std::cout);

  const std::string out = cli.json_path();
  if (!out.empty()) {
    auto rep = serve::make_fleet_report(cfg, points, "vitbit_cli",
                                        pool.size());
    rep.host_wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    report::save_report_file(out, rep);
    // Same self-check as `report`: the artifact must round-trip before
    // anything downstream trusts it.
    const auto back = report::load_report_file(out);
    VITBIT_CHECK_MSG(report::to_json(back) == report::to_json(rep),
                     "fleet report round-trip mismatch: " << out);
    std::cout << "wrote " << out << " (" << rep.fleet_points.size()
              << " sweep points)\n";
  }
  return 0;
}

// Scheduler sweep (serve/sched/sched.h): a mixed multi-class request
// stream over the model zoo through fifo, cb, and cb-pre scheduling.
// --json writes the schema-versioned sched_points report.
int cmd_sched(const Cli& cli, ThreadPool& pool) {
  const auto start = std::chrono::steady_clock::now();
  const auto& calib = arch::default_calibration();
  // The one flag set shared with bench/sched_sim, validated on return.
  const auto cfg = serve::sched_config_from_cli(cli);

  const auto points = serve::run_sched_sweep(cfg, kSpec, calib, &pool);
  serve::sched_table(cfg, points).print(std::cout);

  const std::string out = cli.json_path();
  if (!out.empty()) {
    auto rep = serve::make_sched_report(cfg, points, "vitbit_cli",
                                        pool.size());
    rep.host_wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    report::save_report_file(out, rep);
    // Same self-check as `report`: the artifact must round-trip before
    // anything downstream trusts it.
    const auto back = report::load_report_file(out);
    VITBIT_CHECK_MSG(report::to_json(back) == report::to_json(rep),
                     "sched report round-trip mismatch: " << out);
    std::cout << "wrote " << out << " (" << rep.sched_points.size()
              << " sweep rows)\n";
  }
  return 0;
}

// Scheduled-fleet sweep (serve/cluster.h simulate_fleet_sched): the
// mixed multi-class stream routed across many scheduler shards, warm
// routing and model placement compared against jsq. --json writes the
// schema-versioned fleet_sched_points report (schema minor 9).
int cmd_fleet_sched(const Cli& cli, ThreadPool& pool) {
  const auto start = std::chrono::steady_clock::now();
  const auto& calib = arch::default_calibration();
  // The one flag set shared with bench/fleet_sched_sim, validated on
  // return.
  const auto cfg = serve::fleet_sched_config_from_cli(cli);

  const auto points = serve::run_fleet_sched_sweep(cfg, kSpec, calib, &pool);
  serve::fleet_sched_table(cfg, points).print(std::cout);

  const std::string out = cli.json_path();
  if (!out.empty()) {
    auto rep = serve::make_fleet_sched_report(cfg, points, "vitbit_cli",
                                              pool.size());
    rep.host_wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    report::save_report_file(out, rep);
    // Same self-check as `report`: the artifact must round-trip before
    // anything downstream trusts it.
    const auto back = report::load_report_file(out);
    VITBIT_CHECK_MSG(report::to_json(back) == report::to_json(rep),
                     "fleet-sched report round-trip mismatch: " << out);
    std::cout << "wrote " << out << " (" << rep.fleet_sched_points.size()
              << " sweep rows)\n";
  }
  return 0;
}

int cmd_layout(const Cli& cli) {
  const int bits = static_cast<int>(cli.get_int("bits", 8));
  for (const auto mode : {swar::LaneMode::kUnsigned, swar::LaneMode::kOffset,
                          swar::LaneMode::kTopSigned}) {
    const auto l = swar::paper_policy_layout(bits, mode);
    std::cout << l.to_string() << "  budget=" << l.scalar_abs_budget() << "\n";
  }
  return 0;
}

int dispatch(const Cli& cli, const std::string& cmd, ThreadPool& pool) {
  if (cmd == "study") return cmd_study(cli, pool);
  if (cmd == "tune") return cmd_tune(cli, pool);
  if (cmd == "infer") return cmd_infer(cli, pool);
  if (cmd == "layout") return cmd_layout(cli);
  if (cmd == "report") return cmd_report(cli, pool);
  if (cmd == "serve") return cmd_serve(cli, pool);
  if (cmd == "fleet") return cmd_fleet(cli, pool);
  if (cmd == "sched") return cmd_sched(cli, pool);
  if (cmd == "fleet-sched") return cmd_fleet_sched(cli, pool);
  return -1;
}

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string cmd =
      cli.positional().empty() ? "help" : cli.positional()[0];
  // CLI override for the host GEMM engine, same spelling as VITBIT_GEMM,
  // and for the SIMD tier, same spelling as VITBIT_SIMD_LEVEL.
  if (cli.has("gemm"))
    set_default_gemm_engine(gemm_engine_from_string(cli.get("gemm", "")));
  if (cli.has("simd-level"))
    set_simd_level_override(
        simd_level_from_string(cli.get("simd-level", "")));
  ThreadPool pool(cli.threads());
  const int rc = dispatch(cli, cmd, pool);
  if (rc >= 0) {
    // Subcommands query the flags they accept; anything left over is a
    // typo that would otherwise silently fall back to a default.
    if (const auto typos = cli.unused(); !typos.empty()) {
      std::cerr << "vitbit_cli " << cmd << ": unknown flag --" << typos.front()
                << "\n";
      return 2;
    }
    return rc;
  }
  std::cout << "usage: vitbit_cli "
               "<study|tune|infer|layout|report|serve|fleet|sched|"
               "fleet-sched> [--flags]\n"
               "  study  --m --k --n        Section 3.2 GEMM ratio study\n"
               "  tune   --m --k --n        derive the VitBit split ratios\n"
               "  infer  --model=vit|cnn --strategy=NAME --pack=2\n"
               "  layout --bits=N           packing policy for a bitwidth\n"
               "  report --json=PATH --model=vit|cnn --layers=N --l2\n"
               "         machine-readable run report (see EXPERIMENTS.md)\n"
               "  serve  --rates=CSV --arrival=poisson|uniform|bursty\n"
               "         --policy=timeout|greedy --max-batch=N\n"
               "         --batch-timeout-us=N --queue-capacity=N --num-gpus=N\n"
               "         --slo-us=N --duration-s=S --seed=N [--json=PATH]\n"
               "         fault injection: --fault-seed=N --mtbf-s=S\n"
               "         --mttr-s=S --batch-fail-prob=P --spike-prob=P\n"
               "         --spike-mult=X --max-retries=N --retry-backoff-us=N\n"
               "         --degrade-below=N --fallback=NAME\n"
               "         serving rate sweep: TC vs VitBit goodput and p99\n"
               "  fleet  --shards=N --routes=rr,jsq,po2c --route-seed=N\n"
               "         --strategy=NAME --replicas=N --exact plus the serve\n"
               "         flags; autoscaling: --min-replicas=N\n"
               "         --max-replicas=N --scale-interval-us=N\n"
               "         --scale-up-depth=N --scale-down-depth=N\n"
               "         --scale-p99-us=N --scale-cooldown-us=N\n"
               "         sharded fleet sweep: balancing policies compared\n"
               "         with streaming (P^2) percentiles [--json=PATH]\n"
               "  sched  --models=CSV (zoo names, see serve/models)\n"
               "         --modes=fifo,cb,cb-pre --rates=CSV --classes=CSV\n"
               "         --weights=CSV --slos-us=CSV --shares=CSV\n"
               "         --arrivals=CSV --mix=CSV or per-class --mix0=CSV...\n"
               "         --max-batch=N --queue-capacity=N --num-gpus=N\n"
               "         --iters=N --cache-models=N --load-gbps=X\n"
               "         --warm-swap-us=N --exact [--json=PATH]\n"
               "         continuous-batching scheduler with priority\n"
               "         classes over the multi-model zoo\n"
               "  fleet-sched  the sched flags plus --shards=N\n"
               "         --routes=jsq,warm --route-seed=N\n"
               "         --placement=none|spread --cold-route-classes=N;\n"
               "         autoscaling adds --scale-preempt-per-s=X\n"
               "         --scale-slo-miss-rate=X to the fleet knobs\n"
               "         class-aware scheduled fleet: warm routing and\n"
               "         model placement vs jsq [--json=PATH]\n"
               "  all subcommands: --threads=N  host threads for the\n"
               "         simulation fan-out (default: all cores, 1=serial;\n"
               "         simulated results are identical for every N)\n"
               "         --gemm=ref|blocked|simd  host GEMM engine\n"
               "         (default: simd when the CPU supports it, else\n"
               "         blocked; same as VITBIT_GEMM; bit-identical)\n"
               "         --simd-level=none|sse|avx2  cap the simd engine's\n"
               "         microkernel tier (same as VITBIT_SIMD_LEVEL;\n"
               "         clamped to what the CPU supports; bit-identical)\n";
  return cmd == "help" ? 0 : 1;
}

}  // namespace
}  // namespace vitbit

int main(int argc, char** argv) {
  try {
    return vitbit::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "vitbit_cli: " << e.what() << "\n";
    return 2;
  }
}
