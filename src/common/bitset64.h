// Word-aligned dynamic bitset over 64-bit words.
//
// The simulator's hot state (scheduler candidate masks, done/at-barrier
// flags, pending-writeback masks) is huge counts of 1-bit facts that were
// previously scattered bools and full-vector scans. Packing them into
// 64-bit words shrinks the working set and turns "find the next runnable
// warp" into a find-first-set over one or two words — the metalfpga
// word-aligned-bitset playbook applied to the host simulation loop.
//
// Sets of up to 64 bits are stored in one word inside the object itself —
// no heap allocation, no pointer chase. That covers every mask the
// simulator keeps per warp or per sub-core (<= 48 warps per SM, and
// per-warp register counts usually fit one word); larger sets spill to a
// heap vector transparently.
//
// Deliberately minimal: no allocator/iterator machinery, just the
// operations the scheduler needs — single-bit set/reset/test, bulk
// and/or/reset, population count, and ordered find-first-set iteration.
// All single-bit operations are O(1); scans cost one `countr_zero` per
// visited word. The tail word's unused high bits are kept zero as a class
// invariant, so whole-word operations (count, any, bulk ops) never need a
// per-call mask.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vitbit {

class Bitset64 {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  Bitset64() = default;
  explicit Bitset64(std::size_t bits) { resize(bits); }

  std::size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }
  std::size_t num_words() const { return (bits_ + 63) / 64; }
  std::uint64_t word(std::size_t w) const { return data()[w]; }

  // Value-preserving resize; new bits are zero. Shrinking clears the
  // now-out-of-range bits so the tail invariant holds.
  void resize(std::size_t bits) {
    const std::size_t new_words = (bits + 63) / 64;
    if (new_words > 1) {
      if (bits_ <= 64) {
        // Inline -> heap: the heap vector may hold stale capacity from an
        // earlier larger size, so zero-fill before carrying the word over.
        heap_.assign(new_words, 0);
        heap_[0] = inline_word_;
      } else {
        heap_.resize(new_words, 0);
      }
    } else {
      if (bits_ > 64) inline_word_ = heap_.empty() ? 0 : heap_[0];
      if (bits == 0) inline_word_ = 0;
    }
    bits_ = bits;
    mask_tail();
  }

  // Drops to size 0, keeping any heap capacity (reset()-style reuse).
  void clear() {
    inline_word_ = 0;
    heap_.clear();
    bits_ = 0;
  }

  void push_back(bool value) {
    resize(bits_ + 1);
    if (value) set(bits_ - 1);
  }

  void set(std::size_t i) { data()[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) {
    data()[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void assign(std::size_t i, bool value) { value ? set(i) : reset(i); }
  bool test(std::size_t i) const { return (data()[i >> 6] >> (i & 63)) & 1u; }

  void set_all() {
    std::uint64_t* w = data();
    for (std::size_t i = 0, n = num_words(); i < n; ++i)
      w[i] = ~std::uint64_t{0};
    mask_tail();
  }
  void reset_all() {
    std::uint64_t* w = data();
    for (std::size_t i = 0, n = num_words(); i < n; ++i) w[i] = 0;
  }

  bool any() const {
    const std::uint64_t* w = data();
    for (std::size_t i = 0, n = num_words(); i < n; ++i)
      if (w[i] != 0) return true;
    return false;
  }
  bool none() const { return !any(); }

  std::size_t count() const {
    std::size_t n = 0;
    const std::uint64_t* w = data();
    for (std::size_t i = 0, m = num_words(); i < m; ++i)
      n += static_cast<std::size_t>(std::popcount(w[i]));
    return n;
  }

  // Bulk operations over same-sized sets (checked by the caller; the
  // shorter operand's missing words read as zero to keep misuse benign).
  Bitset64& operator&=(const Bitset64& other) {
    std::uint64_t* w = data();
    const std::uint64_t* o = other.data();
    const std::size_t m = other.num_words();
    for (std::size_t i = 0, n = num_words(); i < n; ++i)
      w[i] &= i < m ? o[i] : 0;
    return *this;
  }
  Bitset64& operator|=(const Bitset64& other) {
    std::uint64_t* w = data();
    const std::uint64_t* o = other.data();
    const std::size_t n = std::min(num_words(), other.num_words());
    for (std::size_t i = 0; i < n; ++i) w[i] |= o[i];
    return *this;
  }
  // this &= ~other (clear every bit set in `other`).
  Bitset64& and_not(const Bitset64& other) {
    std::uint64_t* w = data();
    const std::uint64_t* o = other.data();
    const std::size_t n = std::min(num_words(), other.num_words());
    for (std::size_t i = 0; i < n; ++i) w[i] &= ~o[i];
    return *this;
  }

  bool operator==(const Bitset64& other) const {
    if (bits_ != other.bits_) return false;
    const std::uint64_t* a = data();
    const std::uint64_t* b = other.data();
    for (std::size_t i = 0, n = num_words(); i < n; ++i)
      if (a[i] != b[i]) return false;
    return true;
  }

  // Index of the lowest set bit, or npos.
  std::size_t find_first() const { return find_next(0); }

  // Index of the lowest set bit >= `from`, or npos. The scheduler's
  // round-robin scan is two of these: [cursor, n) then [0, cursor).
  std::size_t find_next(std::size_t from) const {
    if (from >= bits_) return npos;
    const std::uint64_t* words = data();
    std::size_t w = from >> 6;
    std::uint64_t bits = words[w] & (~std::uint64_t{0} << (from & 63));
    while (bits == 0) {
      if (++w == num_words()) return npos;
      bits = words[w];
    }
    return (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
  }

  // Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    const std::uint64_t* words = data();
    for (std::size_t w = 0, n = num_words(); w < n; ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        fn((w << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }

 private:
  bool on_heap() const { return bits_ > 64; }
  std::uint64_t* data() { return on_heap() ? heap_.data() : &inline_word_; }
  const std::uint64_t* data() const {
    return on_heap() ? heap_.data() : &inline_word_;
  }

  void mask_tail() {
    const std::size_t used = bits_ & 63;
    if (used != 0) data()[num_words() - 1] &= (std::uint64_t{1} << used) - 1;
  }

  // Single-word sets (the simulator's per-warp and per-sub-core masks)
  // live here; `heap_` is only touched above 64 bits.
  std::uint64_t inline_word_ = 0;
  std::vector<std::uint64_t> heap_;
  std::size_t bits_ = 0;
};

}  // namespace vitbit
