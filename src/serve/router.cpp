#include "serve/router.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace vitbit::serve {

namespace {

// Disjoint per-request random streams: golden-ratio stride over the
// request id, a policy-tagged offset, and the user seed, then the Rng's
// own splitmix scrambling on top. Same recipe as the per-replica fault
// streams (serve/faults.cpp).
std::uint64_t request_stream_seed(std::uint64_t seed, RoutePolicy policy,
                                  std::uint64_t request_id) {
  return seed + 0x9e3779b97f4a7c15ull * (request_id + 1) +
         0xd1b54a32d192ed03ull * static_cast<std::uint64_t>(policy);
}

}  // namespace

const char* route_policy_name(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRandom:
      return "random";
    case RoutePolicy::kRoundRobin:
      return "rr";
    case RoutePolicy::kJsq:
      return "jsq";
    case RoutePolicy::kPo2c:
      return "po2c";
    case RoutePolicy::kWarm:
      return "warm";
  }
  return "?";
}

RoutePolicy route_policy_from_name(const std::string& name) {
  if (name == "random") return RoutePolicy::kRandom;
  if (name == "rr") return RoutePolicy::kRoundRobin;
  if (name == "jsq") return RoutePolicy::kJsq;
  if (name == "po2c") return RoutePolicy::kPo2c;
  if (name == "warm") return RoutePolicy::kWarm;
  VITBIT_CHECK_MSG(false, "unknown route policy: "
                              << name << " (want random|rr|jsq|po2c|warm)");
  return RoutePolicy::kRandom;
}

std::vector<RoutePolicy> parse_route_list(const std::string& spec) {
  std::vector<RoutePolicy> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    VITBIT_CHECK_MSG(!item.empty(), "empty entry in route list: " << spec);
    out.push_back(route_policy_from_name(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Router::Router(RoutePolicy policy, std::uint64_t seed, int num_shards)
    : policy_(policy), seed_(seed), num_shards_(num_shards) {
  VITBIT_CHECK_MSG(num_shards_ >= 1, "router needs >= 1 shard");
}

int Router::route(const Request& req,
                  const std::vector<std::size_t>& loads) const {
  VITBIT_CHECK_MSG(loads.size() == static_cast<std::size_t>(num_shards_),
                   "router got " << loads.size() << " loads for "
                                 << num_shards_ << " shards");
  const auto n = static_cast<std::uint64_t>(num_shards_);
  switch (policy_) {
    case RoutePolicy::kRandom: {
      Rng rng(request_stream_seed(seed_, policy_, req.id));
      return static_cast<int>(rng.below(n));
    }
    case RoutePolicy::kRoundRobin:
      return static_cast<int>(req.id % n);
    case RoutePolicy::kWarm:  // warmth-blind call sites degrade to jsq
    case RoutePolicy::kJsq: {
      int best = 0;
      for (int s = 1; s < num_shards_; ++s)
        if (loads[static_cast<std::size_t>(s)] <
            loads[static_cast<std::size_t>(best)])
          best = s;
      return best;
    }
    case RoutePolicy::kPo2c: {
      Rng rng(request_stream_seed(seed_, policy_, req.id));
      const auto a = static_cast<int>(rng.below(n));
      const auto b = static_cast<int>(rng.below(n));
      const auto la = loads[static_cast<std::size_t>(a)];
      const auto lb = loads[static_cast<std::size_t>(b)];
      if (la != lb) return la < lb ? a : b;
      return std::min(a, b);
    }
  }
  VITBIT_CHECK_MSG(false, "unreachable route policy");
  return 0;
}

int Router::route(const Request& req, const std::vector<std::size_t>& loads,
                  const std::vector<char>& warm, bool prefer_cold) const {
  if (policy_ != RoutePolicy::kWarm) return route(req, loads);
  VITBIT_CHECK_MSG(loads.size() == static_cast<std::size_t>(num_shards_),
                   "router got " << loads.size() << " loads for "
                                 << num_shards_ << " shards");
  VITBIT_CHECK_MSG(warm.size() == loads.size(),
                   "router got " << warm.size() << " warmth flags for "
                                 << num_shards_ << " shards");
  // jsq among the eligible shards (warm for this model, or cold when the
  // class prefers cold); lowest load wins, ties to the lowest index.
  int best = -1;
  for (int s = 0; s < num_shards_; ++s) {
    const bool eligible = prefer_cold
                              ? warm[static_cast<std::size_t>(s)] == 0
                              : warm[static_cast<std::size_t>(s)] != 0;
    if (!eligible) continue;
    if (best < 0 || loads[static_cast<std::size_t>(s)] <
                        loads[static_cast<std::size_t>(best)])
      best = s;
  }
  if (best >= 0) return best;
  // No eligible shard (e.g. nothing warm yet, or every shard warm while
  // the class prefers cold): fall back to jsq among all.
  best = 0;
  for (int s = 1; s < num_shards_; ++s)
    if (loads[static_cast<std::size_t>(s)] <
        loads[static_cast<std::size_t>(best)])
      best = s;
  return best;
}

}  // namespace vitbit::serve
