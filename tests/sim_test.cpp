#include <gtest/gtest.h>

#include "arch/calibration.h"
#include "arch/orin_spec.h"
#include "common/check.h"
#include "sim/launcher.h"
#include "sim/sm_sim.h"

namespace vitbit::sim {
namespace {

const arch::OrinSpec kSpec;
const arch::Calibration kCalib;

// A warp of `n` independent IMADs (distinct destination registers).
ProgramPtr independent_imads(int n) {
  ProgramBuilder b;
  const auto a = b.new_reg();
  const auto w = b.new_reg();
  for (int i = 0; i < n; ++i) {
    const auto d = b.new_reg();
    b.imad(d, a, w, d);
  }
  b.exit();
  return b.build();
}

// A warp of `n` chained IMADs (each depends on the previous).
ProgramPtr chained_imads(int n) {
  ProgramBuilder b;
  const auto a = b.new_reg();
  const auto w = b.new_reg();
  const auto acc = b.new_reg();
  for (int i = 0; i < n; ++i) b.imad(acc, a, w, acc);
  b.exit();
  return b.build();
}

ProgramPtr independent_ffmas(int n) {
  ProgramBuilder b;
  const auto a = b.new_reg();
  const auto w = b.new_reg();
  for (int i = 0; i < n; ++i) {
    const auto d = b.new_reg();
    b.ffma(d, a, w, d);
  }
  b.exit();
  return b.build();
}

SmStats run_warps(const std::vector<ProgramPtr>& warps) {
  SmSim sm(kSpec, kCalib);
  sm.add_block(warps);
  return sm.run();
}

TEST(Isa, OpcodeTableSanity) {
  EXPECT_EQ(op_info(Opcode::kImad).unit, ExecUnit::kIntPipe);
  EXPECT_EQ(op_info(Opcode::kFfma).unit, ExecUnit::kFpPipe);
  EXPECT_EQ(op_info(Opcode::kImma).unit, ExecUnit::kTensor);
  EXPECT_EQ(op_info(Opcode::kLdg).unit, ExecUnit::kLsu);
  EXPECT_EQ(op_info(Opcode::kImad).issue_cycles, 2)
      << "32-lane warp over a 16-lane pipe";
  EXPECT_STREQ(opcode_name(Opcode::kImad), "IMAD");
  EXPECT_STREQ(unit_name(ExecUnit::kTensor), "TC");
}

TEST(ProgramBuilder, RequiresExit) {
  ProgramBuilder b;
  b.iadd(b.new_reg(), kNoReg, kNoReg);
  EXPECT_THROW(b.build(), CheckError);
}

TEST(SmSim, SingleWarpImadThroughputIsPipeBound) {
  // n independent IMADs, one warp: INT pipe accepts one warp-op per 2
  // cycles, so total ~= 2n.
  const int n = 1000;
  const auto stats = run_warps({independent_imads(n)});
  EXPECT_NEAR(static_cast<double>(stats.cycles), 2.0 * n, 0.05 * n);
  EXPECT_EQ(stats.issued(Opcode::kImad), static_cast<std::uint64_t>(n));
}

TEST(SmSim, ChainedImadsAreLatencyBound) {
  // Each IMAD waits for the previous result: ~latency (5) per instruction.
  const int n = 500;
  const auto stats = run_warps({chained_imads(n)});
  EXPECT_GT(stats.cycles, 4.5 * n);
  EXPECT_LT(stats.cycles, 6.5 * n);
}

TEST(SmSim, TwoWarpsHideChainLatency) {
  // Two chained warps on the same sub-core interleave; the pipe still caps
  // at 1 op / 2 cycles, but utilization roughly doubles vs one chained warp.
  const int n = 500;
  SmSim sm(kSpec, kCalib);
  // Both warps land on different subcores (round-robin) — use 5 warps so
  // subcore 0 gets two of them.
  const auto one = run_warps({chained_imads(n)});
  const auto two = run_warps(
      {chained_imads(n), independent_imads(1), independent_imads(1),
       independent_imads(1), chained_imads(n)});
  // Warps 0 and 4 share sub-core 0: same INT pipe, interleaved chains.
  EXPECT_LT(two.cycles, one.cycles * 1.25)
      << "two chains should overlap, not serialize";
}

TEST(SmSim, IntAndFpPipesRunConcurrently) {
  // The Ampere property VitBit leans on: an INT warp and an FP warp on the
  // same sub-core sustain both pipes at once.
  const int n = 2000;
  const auto int_only = run_warps({independent_imads(n)});
  const auto fp_only = run_warps({independent_ffmas(n)});
  // 5 warps: warps 0 and 4 share sub-core 0.
  const auto both = run_warps(
      {independent_imads(n), independent_imads(1), independent_imads(1),
       independent_imads(1), independent_ffmas(n)});
  EXPECT_NEAR(static_cast<double>(both.cycles),
              static_cast<double>(std::max(int_only.cycles, fp_only.cycles)),
              0.1 * static_cast<double>(int_only.cycles))
      << "INT+FP should overlap almost completely";
}

TEST(SmSim, SamePipeWarpsSerialize) {
  const int n = 2000;
  const auto one = run_warps({independent_imads(n)});
  const auto two = run_warps(
      {independent_imads(n), independent_imads(1), independent_imads(1),
       independent_imads(1), independent_imads(n)});
  EXPECT_GT(two.cycles, 1.8 * one.cycles)
      << "two INT warps on one sub-core contend for the same pipe";
}

TEST(SmSim, IssuePortLimitsOneInstructionPerCycle) {
  // Three warps of cheap branch-unit NOPs on one sub-core: the scheduler
  // issues at most one per cycle regardless of unit availability.
  ProgramBuilder b;
  for (int i = 0; i < 100; ++i) b.emit(Opcode::kNop, kNoReg);
  b.exit();
  const auto p = b.build();
  SmSim sm(kSpec, kCalib);
  sm.add_block({p});  // one warp on subcore 0
  const auto one = sm.run();
  SmSim sm3(kSpec, kCalib);
  sm3.add_block({p, independent_imads(0), independent_imads(0),
                 independent_imads(0), p, independent_imads(0),
                 independent_imads(0), independent_imads(0), p});
  const auto three = sm3.run();  // warps 0,4,8 all on subcore 0
  EXPECT_GE(three.cycles, 3u * 100u - 10u);
  (void)one;
}

TEST(SmSim, TensorCoreOccupancy) {
  // n IMMAs: each holds the tensor core for the calibrated occupancy.
  ProgramBuilder b;
  const auto fa = b.new_reg();
  const auto fb = b.new_reg();
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const auto acc = b.new_reg();
    b.imma(acc, fa, fb);
  }
  b.exit();
  const auto stats = run_warps({b.build()});
  const double occ = kCalib.imma_occupancy_cycles;
  EXPECT_NEAR(static_cast<double>(stats.cycles), occ * n, 0.1 * occ * n);
  EXPECT_EQ(stats.busy(ExecUnit::kTensor),
            static_cast<std::uint64_t>(occ * n));
}

TEST(SmSim, DramBandwidthBindsLargeTransfers) {
  // Many 128B loads from one warp: at ~11.25 B/cycle/SM the stream is
  // bandwidth-bound: cycles ~= total_bytes / bpc.
  ProgramBuilder b;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const auto d = b.new_reg();
    b.ldg(d, 128);
  }
  b.exit();
  const auto stats = run_warps({b.build()});
  const double expect = n * 128.0 / kSpec.dram_bytes_per_cycle_per_sm();
  EXPECT_NEAR(static_cast<double>(stats.cycles), expect, 0.15 * expect);
}

TEST(SmSim, DramLatencyBindsSingleLoad) {
  ProgramBuilder b;
  const auto d = b.new_reg();
  b.ldg(d, 128);
  const auto e = b.new_reg();
  b.iadd(e, d, d);  // depends on the load
  b.exit();
  const auto stats = run_warps({b.build()});
  EXPECT_GE(stats.cycles,
            static_cast<std::uint64_t>(kCalib.dram_latency_cycles));
  EXPECT_LT(stats.cycles,
            static_cast<std::uint64_t>(kCalib.dram_latency_cycles) + 50);
}

TEST(SmSim, SharedMemoryLatency) {
  ProgramBuilder b;
  const auto d = b.new_reg();
  b.lds(d, 128);
  const auto e = b.new_reg();
  b.iadd(e, d, d);
  b.exit();
  const auto stats = run_warps({b.build()});
  EXPECT_GE(stats.cycles,
            static_cast<std::uint64_t>(kCalib.smem_latency_cycles));
  EXPECT_LT(stats.cycles,
            static_cast<std::uint64_t>(kCalib.smem_latency_cycles) + 30);
}

TEST(SmSim, BarrierSynchronizesBlock) {
  // Warp 0 does long work before BAR; warp 1 reaches BAR immediately and
  // must wait; both then run an IMAD. Total >= warp0's pre-barrier work.
  ProgramBuilder b0;
  {
    const auto a = b0.new_reg();
    const auto w = b0.new_reg();
    const auto acc = b0.new_reg();
    for (int i = 0; i < 200; ++i) b0.imad(acc, a, w, acc);
    b0.bar();
    b0.imad(acc, a, w, acc);
    b0.exit();
  }
  ProgramBuilder b1;
  {
    const auto a = b1.new_reg();
    const auto w = b1.new_reg();
    const auto acc = b1.new_reg();
    b1.bar();
    b1.imad(acc, a, w, acc);
    b1.exit();
  }
  const auto stats = run_warps({b0.build(), b1.build()});
  EXPECT_GT(stats.cycles, 200u * 5u)
      << "warp 1 must wait for warp 0's 200 chained IMADs";
}

TEST(SmSim, BarrierMismatchDetectedAsDeadlock) {
  // Warp 1 exits without reaching the barrier warp 0 waits on.
  ProgramBuilder b0;
  b0.bar();
  b0.exit();
  ProgramBuilder b1;
  b1.exit();
  SmSim sm(kSpec, kCalib);
  sm.add_block({b0.build(), b1.build()});
  EXPECT_THROW(sm.run(), CheckError);
}

TEST(SmSim, IndependentBlocksHaveIndependentBarriers) {
  ProgramBuilder b;
  const auto a = b.new_reg();
  const auto w = b.new_reg();
  const auto acc = b.new_reg();
  for (int i = 0; i < 50; ++i) b.imad(acc, a, w, acc);
  b.bar();
  b.exit();
  const auto p = b.build();
  SmSim sm(kSpec, kCalib);
  sm.add_block({p, p});
  sm.add_block({p, p});
  EXPECT_NO_THROW(sm.run());
}

TEST(SmSim, StatsConservation) {
  const int n = 300;
  const auto stats = run_warps({independent_imads(n), independent_ffmas(n)});
  // Every instruction is counted exactly once.
  std::uint64_t by_op = 0;
  for (const auto c : stats.issued_by_opcode) by_op += c;
  EXPECT_EQ(by_op, stats.instructions_issued);
  EXPECT_EQ(stats.instructions_issued,
            static_cast<std::uint64_t>(2 * n + 2));  // + 2 EXITs
  // Unit busy cycles never exceed instances * cycles.
  EXPECT_LE(stats.busy(ExecUnit::kIntPipe),
            stats.cycles * static_cast<std::uint64_t>(kSpec.subcores_per_sm));
  EXPECT_LE(stats.busy(ExecUnit::kLsu), stats.cycles);
}

TEST(SmSim, IpcReflectsDualIssueAcrossPipes) {
  const int n = 3000;
  const auto int_only = run_warps({independent_imads(n)});
  const auto mixed = run_warps(
      {independent_imads(n), independent_imads(1), independent_imads(1),
       independent_imads(1), independent_ffmas(n)});
  EXPECT_GT(mixed.ipc(), 1.6 * int_only.ipc())
      << "using both pipes should raise IPC substantially (paper Fig. 10)";
}

TEST(Launcher, OccupancyLimits) {
  KernelSpec k;
  k.block_warps = {independent_imads(1), independent_imads(1),
                   independent_imads(1), independent_imads(1),
                   independent_imads(1), independent_imads(1),
                   independent_imads(1), independent_imads(1)};  // 8 warps
  k.regs_per_thread = 64;
  k.smem_bytes = 48 * 1024;
  // warp limit: 48/8 = 6; smem: 164K/48K = 3; regs: 65536/(64*32*8) = 4.
  EXPECT_EQ(occupancy_blocks_per_sm(k, kSpec), 3);
  k.smem_bytes = 16 * 1024;
  EXPECT_EQ(occupancy_blocks_per_sm(k, kSpec), 4);
  k.regs_per_thread = 32;
  EXPECT_EQ(occupancy_blocks_per_sm(k, kSpec), 6);
}

TEST(Launcher, ImpossibleKernelThrows) {
  KernelSpec k;
  k.block_warps = {independent_imads(1)};
  k.smem_bytes = 200 * 1024;  // exceeds the SM
  EXPECT_THROW(occupancy_blocks_per_sm(k, kSpec), CheckError);
}

TEST(Launcher, WavesScaleTotalCycles) {
  KernelSpec k;
  k.block_warps = {independent_imads(400)};
  k.smem_bytes = 164 * 1024;  // force 1 block per SM
  k.grid_blocks = kSpec.num_sms;  // exactly one wave
  const auto one_wave = launch_kernel(k, kSpec, kCalib);
  EXPECT_EQ(one_wave.waves, 1);
  k.grid_blocks = kSpec.num_sms * 3;
  const auto three_waves = launch_kernel(k, kSpec, kCalib);
  EXPECT_EQ(three_waves.waves, 3);
  // SM cycles triple; the fixed launch overhead is paid once per kernel.
  const auto overhead =
      static_cast<std::uint64_t>(kCalib.kernel_launch_overhead_cycles);
  EXPECT_EQ(three_waves.total_cycles - overhead,
            3 * (one_wave.total_cycles - overhead));
  EXPECT_EQ(three_waves.grid_instructions, 3 * one_wave.grid_instructions);
}

TEST(Launcher, PartialWaveAddsTail) {
  KernelSpec k;
  k.block_warps = {independent_imads(400)};
  k.smem_bytes = 164 * 1024;
  k.grid_blocks = kSpec.num_sms + 1;  // one full wave + a 1-block tail
  const auto r = launch_kernel(k, kSpec, kCalib);
  EXPECT_EQ(r.waves, 2);
  k.grid_blocks = kSpec.num_sms;
  const auto full = launch_kernel(k, kSpec, kCalib);
  EXPECT_GT(r.total_cycles, full.total_cycles);
  EXPECT_LT(r.total_cycles, 2 * full.total_cycles + 10);
}

TEST(Launcher, MillisecondsConversion) {
  LaunchResult r;
  r.total_cycles = static_cast<std::uint64_t>(kSpec.clock_ghz * 1e6);
  EXPECT_NEAR(r.milliseconds(kSpec), 1.0, 1e-9);
}

}  // namespace
}  // namespace vitbit::sim
