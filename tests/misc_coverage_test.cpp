// Coverage for smaller paths not exercised elsewhere: logging levels,
// negative-shift requantization, affine layer norm scales, and the
// unsigned-operand fast path of the VitBit executor.
#include <gtest/gtest.h>

#include <sstream>

#include "common/log.h"
#include "common/rng.h"
#include "quant/ilayernorm.h"
#include "quant/qtensor.h"
#include "tensor/gemm_ref.h"
#include "vitbit/executors.h"

namespace vitbit {
namespace {

TEST(Log, ThresholdFiltersLevels) {
  const auto prev = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  // Messages below the threshold are dropped before formatting; this just
  // exercises the macro paths without asserting on stream contents.
  VITBIT_LOG(kDebug) << "dropped";
  VITBIT_LOG(kError) << "emitted";
  set_log_threshold(prev);
}

TEST(Requantize, NegativeShiftWidens) {
  // out_fb > in_fb: values shift left (scale refinement), still clamped.
  MatrixI32 acc(1, 2);
  acc.at(0, 0) = 3;
  acc.at(0, 1) = 100;
  const auto out = quant::requantize(acc, /*in_fb=*/2, /*out_fb=*/4, 8);
  EXPECT_EQ(out.at(0, 0), 12);
  EXPECT_EQ(out.at(0, 1), 127);  // 400 clamps
}

TEST(Requantize, IdentityWhenScalesMatch) {
  MatrixI32 acc(1, 2);
  acc.at(0, 0) = -5;
  acc.at(0, 1) = 90;
  const auto out = quant::requantize(acc, 6, 6, 8);
  EXPECT_EQ(out.at(0, 0), -5);
  EXPECT_EQ(out.at(0, 1), 90);
}

TEST(ILayerNormAffine, GammaBetaAtDifferentScales) {
  Rng rng(1);
  MatrixI32 x(2, 16);
  fill_uniform(x, rng, -500, 500);
  // gb_fb > out_fb exercises the down-shift branch of the beta term.
  const int out_fb = 6, gb_fb = 10;
  std::vector<std::int32_t> gamma(16, 1 << gb_fb);  // gamma = 1
  std::vector<std::int32_t> beta(16, 1 << gb_fb);   // beta = 1
  const auto plain = quant::ilayernorm(x, out_fb);
  const auto affine = quant::ilayernorm_affine(x, out_fb, gamma, beta, gb_fb);
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_NEAR(affine.flat()[i], plain.flat()[i] + (1 << out_fb), 2);
}

TEST(ILayerNormAffine, SizeMismatchThrows) {
  MatrixI32 x(1, 4);
  std::vector<std::int32_t> wrong(3, 0);
  std::vector<std::int32_t> ok(4, 0);
  EXPECT_THROW(quant::ilayernorm_affine(x, 4, wrong, ok, 4), CheckError);
  EXPECT_THROW(quant::ilayernorm_affine(x, 4, ok, wrong, 4), CheckError);
}

TEST(Executors, UnsignedOperandsUseUnsignedLanesExactly) {
  // Attention-probability-like data: both operands non-negative. The
  // executor switches to unsigned lanes internally; the result must still
  // be bit-exact.
  Rng rng(2);
  MatrixI32 probs(6, 40), v(40, 18);
  fill_uniform(probs, rng, 0, 127);
  fill_uniform(v, rng, 0, 127);
  const auto fn = core::make_gemm_executor(core::Strategy::kVitBit);
  EXPECT_EQ(max_abs_diff(fn(probs, v), gemm_ref_int(probs, v)), 0);
}

TEST(Executors, MixedSignFallsBackToSignedLanes) {
  Rng rng(3);
  MatrixI32 a(4, 32), b(32, 10);
  fill_uniform(a, rng, 0, 127);
  fill_uniform(b, rng, -128, 127);  // one signed operand
  const auto fn = core::make_gemm_executor(core::Strategy::kVitBit);
  EXPECT_EQ(max_abs_diff(fn(a, b), gemm_ref_int(a, b)), 0);
}

TEST(QTensor, ScaleAccessor) {
  quant::QTensor t;
  t.frac_bits = 4;
  EXPECT_DOUBLE_EQ(t.scale(), 1.0 / 16.0);
}

}  // namespace
}  // namespace vitbit
