// Energy model for the embedded GPU — the paper's motivation is energy
// efficiency under the Jetson power envelope (Section 1), so the benches
// report energy per inference alongside time.
//
// Event-level accounting: each dispatch-busy cycle of a unit class costs a
// fixed dynamic energy, plus leakage/base power for the kernel duration.
// Coefficients are coarse 8nm-class estimates (pJ per lane-cycle); as with
// the area model, the reproduced results are ratios, which depend only on
// relative unit costs and busy-cycle counts from the simulator.
#pragma once

#include "arch/orin_spec.h"
#include "sim/stats.h"

namespace vitbit::arch {

struct EnergyModel {
  // Dynamic energy per dispatch-busy cycle of one unit instance (nJ).
  double int_pipe_nj = 0.020;   // 16 INT32 lanes
  double fp_pipe_nj = 0.026;    // 16 FP32 lanes
  double sfu_nj = 0.012;
  double tensor_core_nj = 0.110;
  double lsu_nj = 0.040;        // smem/L1 access path
  // DRAM energy per byte actually transferred (nJ/B; LPDDR5-class).
  double dram_nj_per_byte = 0.060;
  // Static/base power of the GPU complex while a kernel runs (W).
  double base_watts = 4.0;

  // Energy of one SM's execution (nJ), excluding DRAM.
  double sm_dynamic_nj(const sim::SmStats& stats) const {
    using sim::ExecUnit;
    return int_pipe_nj * static_cast<double>(stats.busy(ExecUnit::kIntPipe)) +
           fp_pipe_nj * static_cast<double>(stats.busy(ExecUnit::kFpPipe)) +
           sfu_nj * static_cast<double>(stats.busy(ExecUnit::kSfu)) +
           tensor_core_nj *
               static_cast<double>(stats.busy(ExecUnit::kTensor)) +
           lsu_nj * static_cast<double>(stats.busy(ExecUnit::kLsu));
  }

  // Static energy for a duration in cycles (nJ).
  double static_nj(const OrinSpec& spec, double cycles) const {
    return base_watts * cycles / (spec.clock_ghz * 1e9) * 1e9;
  }
};

}  // namespace vitbit::arch
