// Fleet tier of the serving simulator: many ShardSims (serve/server.h)
// interleaved in one global virtual-time loop, fed by a Router
// (serve/router.h) that picks a shard per arrival, with optional reactive
// autoscaling per shard. This is where the single-node goodput story
// scales out: the fleet sweep compares balancing policies (rr vs jsq vs
// po2c) at rates and request counts no single replica could absorb.
//
// Determinism contract, extended from serve/server.h: the fleet loop is
// single-threaded per sweep point (live-load routing couples the shards,
// so they cannot be simulated independently), shards step in index order
// at every timestamp, router randomness is a pure function of
// (seed, policy, request id), and per-shard percentile sketches merge in
// shard-index order. Parallelism only fans out over sweep points through
// ThreadPool::parallel_map, so fleet reports are byte-identical at every
// --threads value.
//
// Memory contract: arrivals stream through WorkloadStream and latencies
// stream through P² sketches (serve/sketch.h), so peak sink memory is
// independent of the request count — 10^7-request sweep points run in the
// same footprint as 10^3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/router.h"
#include "serve/sched/sched.h"
#include "serve/server.h"

namespace vitbit::serve {

struct FleetConfig {
  int num_shards = 4;
  RoutePolicy route = RoutePolicy::kJsq;
  // Seed of the router's per-request random streams (random / po2c).
  std::uint64_t route_seed = 1;
  // Per-shard server knobs. Each shard derives its own fault stream from
  // shard.faults.seed and its shard index, so shards fail independently.
  ServerConfig shard;
  AutoscaleConfig autoscale;
  PercentileMode percentiles = PercentileMode::kSketch;

  void validate() const;
};

struct FleetMetrics {
  // Span-weighted fleet aggregate (see aggregate_shard_metrics), with
  // latency percentiles over all shards' completions: merged sketches in
  // kSketch mode, exact nearest-rank over the concatenated samples in
  // kExact mode.
  ServeMetrics total;
  std::vector<ServeMetrics> per_shard;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  // Spread of per-shard utilization — the balance quality signal the
  // policy comparison tables report.
  double shard_util_min = 0.0;
  double shard_util_max = 0.0;
};

// Aggregates per-shard metrics into one fleet-level ServeMetrics. Counts
// add. Ratios are weighted by each shard's virtual-time span, never
// averaged naively: utilization = sum busy / sum replica-time (a shard
// that served twice as long counts twice as much) and mean queue depth =
// sum depth-integral / sum shard spans. Rates divide by the fleet
// makespan `end_us`. Latency percentiles are NOT filled in here — the
// caller owns those (they need the shards' sketches or raw samples).
// Exposed for fleet_test's two-shard unequal-duration case.
ServeMetrics aggregate_shard_metrics(const std::vector<ServeMetrics>& shards,
                                     std::uint64_t end_us);

// Runs the fleet loop over one workload until fully drained. `latency`
// must cover shard.batcher.max_batch_size; `fallback` follows the same
// rules as simulate_server.
FleetMetrics simulate_fleet(const WorkloadConfig& workload,
                            const LatencyTable& latency,
                            const FleetConfig& cfg,
                            const LatencyTable* fallback = nullptr);

// A (route-policy x arrival-rate) sweep over one model, strategy, and
// fleet config — the fleet analogue of SweepConfig.
struct FleetSweepConfig {
  nn::VitConfig model;
  core::StrategyConfig strategy_cfg;
  core::Strategy strategy = core::Strategy::kVitBit;
  std::vector<RoutePolicy> routes = {RoutePolicy::kRoundRobin,
                                     RoutePolicy::kJsq, RoutePolicy::kPo2c};
  std::vector<double> rates_rps = {2000, 4000, 8000};
  // rate_rps is overridden per sweep point; kind/duration/seed are shared
  // so every policy faces byte-identical request streams.
  WorkloadConfig workload;
  FleetConfig fleet;
  // Degraded-mode strategy when fleet.shard.faults.degrade_below_live > 0.
  core::Strategy fallback_strategy = core::Strategy::kTC;
};

struct FleetPoint {
  RoutePolicy route = RoutePolicy::kJsq;
  double rate_rps = 0.0;
  FleetMetrics metrics;
};

// Phase 1 memoizes the strategy (and fallback) latency tables; phase 2
// runs the fleet loop per (route, rate) point over `pool` in index order.
std::vector<FleetPoint> run_fleet_sweep(const FleetSweepConfig& cfg,
                                        const arch::OrinSpec& spec,
                                        const arch::Calibration& calib,
                                        ThreadPool* pool = nullptr);

// Console rendering: one row per rate, goodput / p99 / drop / utilization
// spread per route policy (column groups follow cfg.routes order).
Table fleet_table(const FleetSweepConfig& cfg,
                  const std::vector<FleetPoint>& points);

// Shared flag set of fleet_sim and `vitbit_cli fleet`: the serve flags
// (--layers, --rates/--rate, --arrival, --duration-s, --seed, --policy,
// --max-batch, --batch-timeout-us, --queue-capacity, --slo-us, fault
// knobs, --fallback) plus the fleet knobs: --shards, --routes/--route,
// --route-seed, --strategy, --replicas (per-shard GPUs), --exact (exact
// percentiles instead of P² sketches), and the autoscaling knobs
// (--min-replicas, --max-replicas, --scale-interval-us, --scale-up-depth,
// --scale-down-depth, --scale-p99-us, --scale-cooldown-us). Autoscaling
// turns on when --max-replicas exceeds --min-replicas. Validates the
// assembled config before returning.
FleetSweepConfig fleet_config_from_cli(const Cli& cli);

// Schema-versioned run report carrying one FleetPointReport per sweep
// point plus the sweep's full knob set in meta (the baseline gate
// requires meta to match exactly). host_wall_seconds is left 0.
report::RunReport make_fleet_report(const FleetSweepConfig& cfg,
                                    const std::vector<FleetPoint>& points,
                                    const std::string& tool, int threads);

// ---------------------------------------------------------------------------
// Class-aware scheduled fleet: the sched and cluster tiers unified. Each
// shard is a full SchedSim (any SchedMode, priority classes, per-replica
// LRU weight caches, optional preemption-aware autoscaling) and the
// shared fleet loop (serve/fleet_loop.h) interleaves them under the same
// determinism contract as simulate_fleet: single-threaded global
// virtual-time loop per sweep point, shards stepped in index order,
// router decisions pure functions of (seed, policy, request id), and
// cross-shard sketch merges in shard-index order.

// How the model zoo is staged across shards before traffic:
//   kNone    no prestaging — every shard starts cold, first load free
//            (the pre-unification SchedSim behavior)
//   kSpread  shard s prestages model (s mod num_models) on all its
//            replicas — every model warm somewhere (when shards >=
//            models), which the warm routing policy exploits to keep
//            interactive traffic off cold weight swaps
enum class PlacementPolicy { kNone, kSpread };

const char* placement_policy_name(PlacementPolicy policy);
// Accepts "none" | "spread"; throws CheckError otherwise.
PlacementPolicy placement_policy_from_name(const std::string& name);

struct FleetSchedConfig {
  int num_shards = 4;
  RoutePolicy route = RoutePolicy::kJsq;
  std::uint64_t route_seed = 1;
  // Per-shard scheduler knobs; num_gpus is the per-shard replica count.
  // Every shard shares one immutable ModelRegistry (latency tables and
  // swap costs); all mutable model state — the LRU weight caches — lives
  // inside each shard's replicas.
  SchedConfig shard;
  AutoscaleConfig autoscale;
  PlacementPolicy placement = PlacementPolicy::kNone;
  // Under kWarm routing, the lowest-priority `cold_route_classes`
  // classes prefer cold shards (batch traffic stays off the warm set);
  // all higher classes prefer warm shards. Clamped so at least one class
  // routes warm when there are >= 2 classes; with a single class all
  // traffic routes warm.
  int cold_route_classes = 1;
  PercentileMode percentiles = PercentileMode::kSketch;

  void validate() const;
};

// Fleet-level aggregate in the span-weighted sense of
// aggregate_shard_metrics, applied per scope: the total and every
// per-class / per-model breakdown aggregate across shards, with latency
// percentiles merged in shard-index order (P² sketches in kSketch mode,
// exact nearest-rank over concatenated samples in kExact).
struct FleetSchedMetrics {
  SchedMetrics total;
  std::vector<SchedMetrics> per_shard;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  double shard_util_min = 0.0;
  double shard_util_max = 0.0;
};

// Runs the scheduled fleet over one mixed workload until drained. With
// num_shards == 1, jsq routing, no autoscaling, and kNone placement this
// reproduces simulate_sched exactly (fleet_sched_test pins it in all
// three modes).
FleetSchedMetrics simulate_fleet_sched(const MixedWorkloadConfig& workload,
                                       const ModelRegistry& registry,
                                       const FleetSchedConfig& cfg);

// A (mode x route x rate) sweep at fixed traffic mix — every point faces
// the byte-identical request stream, so mode and route deltas are
// scheduling and placement, never sampling.
struct FleetSchedSweepConfig {
  std::vector<std::string> model_names = {"vit-tiny", "cnn-small"};
  core::Strategy strategy = core::Strategy::kVitBit;
  std::vector<std::string> modes = {"fifo", "cb", "cb-pre"};
  std::vector<RoutePolicy> routes = {RoutePolicy::kJsq, RoutePolicy::kWarm};
  std::vector<double> rates_rps = {200, 400};
  // rate_rps/num_models are overridden per point / from model_names.
  MixedWorkloadConfig workload;
  FleetSchedConfig fleet;
  SwapCostConfig swap;

  void validate() const;
};

struct FleetSchedPoint {
  std::string mode;
  RoutePolicy route = RoutePolicy::kJsq;
  double rate_rps = 0.0;
  FleetSchedMetrics metrics;
};

// Phase 1 builds the shared model registry; phase 2 fans the fleet loop
// out over `pool` per (mode, route, rate) point in index order —
// byte-identical results at every pool size.
std::vector<FleetSchedPoint> run_fleet_sched_sweep(
    const FleetSchedSweepConfig& cfg, const arch::OrinSpec& spec,
    const arch::Calibration& calib, ThreadPool* pool = nullptr);

// Console rendering: one row per (mode, route, rate) with goodput, p99,
// drop rate, preemption / cold-swap counts, and the utilization spread.
Table fleet_sched_table(const FleetSchedSweepConfig& cfg,
                        const std::vector<FleetSchedPoint>& points);

// Shared flag set of bench/fleet_sched_sim and `vitbit_cli fleet-sched`:
// all of sched_config_from_cli's zoo/traffic/scheduler flags (--num-gpus
// is the per-shard replica count) plus the fleet knobs --shards,
// --routes/--route, --route-seed, --placement (none|spread),
// --cold-route-classes, and the autoscaling knobs (--min-replicas,
// --max-replicas, --scale-interval-us, --scale-up-depth,
// --scale-down-depth, --scale-p99-us, --scale-cooldown-us, plus the
// preemption-aware --scale-preempt-per-s and --scale-slo-miss-rate).
// Validates the assembled config before returning.
FleetSchedSweepConfig fleet_sched_config_from_cli(const Cli& cli);

// Schema-versioned report (schema minor 9): per (mode, route, rate) one
// aggregate "all" row plus one row per class and per model
// (report::FleetSchedPointReport), with the sweep's full knob set in
// meta. host_wall_seconds is left 0.
report::RunReport make_fleet_sched_report(
    const FleetSchedSweepConfig& cfg,
    const std::vector<FleetSchedPoint>& points, const std::string& tool,
    int threads);

}  // namespace vitbit::serve
