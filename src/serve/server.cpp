#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/check.h"
#include "common/cli.h"
#include "common/thread_pool.h"
#include "nn/vit_model.h"

namespace vitbit::serve {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

std::string fmt_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", rate);
  return buf;
}

// One memoization entry: simulate a `batch`-image inference under
// `strategy` and convert cycles to integer virtual microseconds at the
// spec clock (clock_ghz cycles per nanosecond).
std::uint64_t simulate_batch_latency_us(const KernelLogForBatch& log_for_batch,
                                        core::Strategy strategy,
                                        const core::StrategyConfig& cfg,
                                        const arch::OrinSpec& spec,
                                        const arch::Calibration& calib,
                                        int batch, ThreadPool* pool) {
  const auto log = log_for_batch(batch);
  const auto t = core::time_inference(log, strategy, cfg, spec, calib, pool);
  return static_cast<std::uint64_t>(std::llround(
      static_cast<double>(t.total_cycles) / (spec.clock_ghz * 1e3)));
}

}  // namespace

std::uint64_t LatencyTable::latency_us(std::size_t batch) const {
  VITBIT_CHECK_MSG(batch >= 1 && batch < batch_latency_us.size(),
                   "batch size " << batch << " outside latency table [1, "
                                 << max_batch() << "]");
  return batch_latency_us[batch];
}

std::vector<LatencyTable> build_latency_tables_from_logs(
    const KernelLogForBatch& log_for_batch,
    const std::vector<core::Strategy>& strategies,
    const core::StrategyConfig& cfg, const arch::OrinSpec& spec,
    const arch::Calibration& calib, int max_batch, ThreadPool* pool) {
  VITBIT_CHECK_MSG(!strategies.empty(), "need >= 1 strategy");
  VITBIT_CHECK_MSG(max_batch >= 1, "max_batch must be >= 1");
  // One kernel-log simulation per distinct (strategy, batch size),
  // flattened over the pool.
  const auto n = strategies.size();
  const auto mb = static_cast<std::size_t>(max_batch);
  const auto flat = parallel_map(pool, n * mb, [&](std::size_t i) {
    return simulate_batch_latency_us(log_for_batch, strategies[i / mb], cfg,
                                     spec, calib, static_cast<int>(i % mb) + 1,
                                     pool);
  });
  std::vector<LatencyTable> tables(n);
  for (std::size_t s = 0; s < n; ++s) {
    tables[s].strategy = strategies[s];
    tables[s].batch_latency_us.assign(mb + 1, 0);
    for (std::size_t b = 1; b <= mb; ++b) {
      const auto us = flat[s * mb + (b - 1)];
      VITBIT_CHECK_MSG(us >= 1,
                       "batch " << b << " latency rounds to zero microseconds");
      tables[s].batch_latency_us[b] = us;
    }
  }
  return tables;
}

std::vector<LatencyTable> build_latency_tables(
    const nn::VitConfig& model, const std::vector<core::Strategy>& strategies,
    const core::StrategyConfig& cfg, const arch::OrinSpec& spec,
    const arch::Calibration& calib, int max_batch, ThreadPool* pool) {
  return build_latency_tables_from_logs(
      [&model](int batch) { return nn::build_kernel_log(model, batch); },
      strategies, cfg, spec, calib, max_batch, pool);
}

LatencyTable build_latency_table(const nn::VitConfig& model,
                                 core::Strategy strategy,
                                 const core::StrategyConfig& cfg,
                                 const arch::OrinSpec& spec,
                                 const arch::Calibration& calib, int max_batch,
                                 ThreadPool* pool) {
  return build_latency_tables(model, {strategy}, cfg, spec, calib, max_batch,
                              pool)
      .front();
}

void ServerConfig::validate() const {
  batcher.validate();
  VITBIT_CHECK_MSG(num_gpus >= 1, "num_gpus must be >= 1");
  VITBIT_CHECK_MSG(slo_us >= 1, "slo_us must be >= 1");
  faults.validate();
  VITBIT_CHECK_MSG(faults.degrade_below_live <= num_gpus,
                   "degrade_below_live " << faults.degrade_below_live
                                         << " exceeds num_gpus " << num_gpus);
  make_policy(policy);  // throws on an unknown name
}

void AutoscaleConfig::validate() const {
  VITBIT_CHECK_MSG(min_replicas >= 1, "min_replicas must be >= 1");
  VITBIT_CHECK_MSG(max_replicas >= min_replicas,
                   "max_replicas " << max_replicas << " below min_replicas "
                                   << min_replicas);
  if (!enabled()) return;
  VITBIT_CHECK_MSG(interval_us >= 1, "autoscale interval must be >= 1 us");
  VITBIT_CHECK_MSG(down_queue_depth <= up_queue_depth,
                   "down_queue_depth " << down_queue_depth
                                       << " above up_queue_depth "
                                       << up_queue_depth
                                       << " (hysteresis inverted)");
  VITBIT_CHECK_MSG(std::isfinite(up_preempt_per_s) && up_preempt_per_s >= 0.0,
                   "up_preempt_per_s must be finite and >= 0");
  VITBIT_CHECK_MSG(std::isfinite(up_slo_miss_rate) && up_slo_miss_rate >= 0.0,
                   "up_slo_miss_rate must be finite and >= 0");
}

ShardSim::ShardSim(const LatencyTable& latency, const ServerConfig& cfg,
                   const LatencyTable* fallback, PercentileMode mode,
                   const AutoscaleConfig& autoscale)
    : latency_(latency),
      fallback_(fallback),
      cfg_(cfg),
      as_(autoscale),
      policy_(make_policy(cfg.policy)),
      queue_(cfg.batcher.queue_capacity),
      sink_(mode, mode == PercentileMode::kSketch ? cfg.slo_us : 0),
      faults_(cfg.faults,
              autoscale.enabled() ? autoscale.max_replicas : cfg.num_gpus),
      running_(static_cast<std::size_t>(
          autoscale.enabled() ? autoscale.max_replicas : cfg.num_gpus)),
      policy_wake_us_(kNever) {
  cfg_.validate();
  as_.validate();
  VITBIT_CHECK_MSG(latency_.max_batch() >= cfg_.batcher.max_batch_size,
                   "latency table covers batches up to "
                       << latency_.max_batch() << ", batcher needs "
                       << cfg_.batcher.max_batch_size);
  if (cfg_.faults.degrade_below_live > 0) {
    VITBIT_CHECK_MSG(fallback_ != nullptr,
                     "degrade_below_live > 0 requires a fallback table");
    VITBIT_CHECK_MSG(fallback_->max_batch() >= cfg_.batcher.max_batch_size,
                     "fallback table covers batches up to "
                         << fallback_->max_batch() << ", batcher needs "
                         << cfg_.batcher.max_batch_size);
  }
  enabled_ = as_.enabled() ? std::clamp(cfg_.num_gpus, as_.min_replicas,
                                        as_.max_replicas)
                           : cfg_.num_gpus;
  // The first evaluation lands one interval in; t = 0 has no signal yet.
  next_autoscale_us_ = as_.interval_us;
}

// Routes a failed or aborted batch through the retry budget: each request
// either schedules its next attempt after exponential backoff or is shed
// when the budget or its SLO deadline is exhausted.
void ShardSim::fail_batch(std::uint64_t t, std::vector<Request>&& batch) {
  sink_.on_batch_failure();
  for (auto& r : batch) {
    const int attempt = r.attempt + 1;
    if (attempt > cfg_.faults.max_retries) {
      sink_.on_shed();
      continue;
    }
    const std::uint64_t ready = t + faults_.retry_delay_us(attempt);
    if (ready > r.arrival_us + cfg_.slo_us) {
      sink_.on_shed();
      continue;
    }
    sink_.on_retry();
    r.attempt = attempt;
    retries_.push_back({ready, r});
    std::push_heap(retries_.begin(), retries_.end(), RetryLater{});
  }
}

void ShardSim::accrue_replica_time(std::uint64_t now) {
  replica_time_integral_us_ += static_cast<std::uint64_t>(enabled_) *
                               (now - last_enabled_change_us_);
  last_enabled_change_us_ = now;
}

int ShardSim::live_enabled() const {
  int n = 0;
  for (int g = 0; g < enabled_; ++g)
    if (faults_.up(g)) ++n;
  return n;
}

void ShardSim::begin_step(std::uint64_t now) {
  // 1. Replica fault transitions due at `now` (lowest index first). A
  // replica going down aborts its in-flight batch onto the retry path;
  // the partial busy time still counts against utilization. Disabled
  // replicas keep their schedules ticking but never hold work.
  const int capacity = static_cast<int>(running_.size());
  for (int g = 0; g < capacity; ++g) {
    while (faults_.next_transition_us(g) <= now) {
      faults_.advance(g);
      touch(now);
      auto& fl = running_[static_cast<std::size_t>(g)];
      if (!faults_.up(g) && fl.active) {
        sink_.on_batch(fl.batch.size(), now - fl.started_us);
        in_flight_requests_ -= fl.batch.size();
        fail_batch(now, std::move(fl.batch));
        fl = InFlight{};
      }
    }
  }
  if (cfg_.faults.degrade_below_live > 0) {
    const bool want = live_enabled() < cfg_.faults.degrade_below_live;
    if (want && !degraded_) {
      sink_.on_failover();
      degraded_ = true;
      degraded_since_ = now;
    } else if (!want && degraded_) {
      sink_.add_degraded_us(now - degraded_since_);
      degraded_ = false;
    }
  }

  // 2. Batch completions due at `now` (lowest replica index first).
  // Failed batches requeue; successful ones record per-request latency.
  for (auto& fl : running_) {
    if (!fl.active || fl.done_us > now) continue;
    sink_.on_batch(fl.batch.size(), fl.done_us - fl.started_us);
    in_flight_requests_ -= fl.batch.size();
    touch(now);
    if (fl.fail) {
      fail_batch(fl.done_us, std::move(fl.batch));
    } else {
      for (const auto& r : fl.batch)
        sink_.on_completion(r.arrival_us, fl.done_us);
    }
    fl = InFlight{};
  }
}

void ShardSim::maybe_autoscale(std::uint64_t now) {
  if (!as_.enabled()) return;
  while (next_autoscale_us_ <= now) {
    const std::uint64_t t = next_autoscale_us_;
    next_autoscale_us_ += as_.interval_us;
    if (t < cooldown_until_us_) continue;
    const std::size_t depth = queue_.depth();
    const bool hot =
        depth > as_.up_queue_depth ||
        (as_.up_p99_us > 0 && sink_.running_p99_us() > as_.up_p99_us);
    if (hot && enabled_ < as_.max_replicas) {
      accrue_replica_time(t);
      ++enabled_;
      ++scale_ups_;
      cooldown_until_us_ = cooldown_expiry_us(t);
      touch(t);
      continue;
    }
    // Only a fully idle top replica is retired — never abort work.
    if (!hot && depth <= as_.down_queue_depth &&
        enabled_ > as_.min_replicas &&
        !running_[static_cast<std::size_t>(enabled_ - 1)].active) {
      accrue_replica_time(t);
      --enabled_;
      ++scale_downs_;
      cooldown_until_us_ = cooldown_expiry_us(t);
      touch(t);
    }
  }
}

std::uint64_t ShardSim::cooldown_expiry_us(std::uint64_t t) const {
  // Saturating t + cooldown: a near-uint64-max cooldown (for instance a
  // negative CLI value wrapped through the unsigned cast) must mean
  // "never scale again", not overflow past zero and re-arm at the very
  // next decision tick — including the first tick after virtual time 0.
  return t > kNever - as_.cooldown_us ? kNever : t + as_.cooldown_us;
}

void ShardSim::admit(std::uint64_t now, const Request& r) {
  touch(now);
  sink_.on_offered();
  if (queue_.offer(r))
    sink_.on_queue_depth(now, queue_.depth());
  else
    sink_.on_drop();
}

void ShardSim::admit_due_retries(std::uint64_t now) {
  // A full queue sheds retries rather than dropping them — the request
  // was already admitted once and now exits the system for good.
  while (!retries_.empty() && retries_.front().ready_us <= now) {
    std::pop_heap(retries_.begin(), retries_.end(), RetryLater{});
    const Request r = retries_.back().req;
    retries_.pop_back();
    touch(now);
    if (queue_.offer(r)) {
      sink_.on_requeue();
      sink_.on_queue_depth(now, queue_.depth());
    } else {
      sink_.on_shed();
    }
  }
}

void ShardSim::dispatch(std::uint64_t now) {
  // Dispatch onto idle live enabled replicas (lowest index first) while
  // the policy agrees; its wake time bounds the idle stretch otherwise.
  // Degraded mode charges new batches to the fallback table.
  policy_wake_us_ = kNever;
  while (!queue_.empty()) {
    int idle = -1;
    for (int g = 0; g < enabled_; ++g)
      if (faults_.up(g) && !running_[static_cast<std::size_t>(g)].active) {
        idle = g;
        break;
      }
    if (idle < 0) break;
    const auto decision = policy_->decide(now, queue_.depth(),
                                          queue_.front().arrival_us,
                                          cfg_.batcher);
    if (!decision.dispatch) {
      VITBIT_CHECK_MSG(decision.wake_us > now,
                       "policy wait must wake strictly in the future");
      policy_wake_us_ = decision.wake_us;
      break;
    }
    auto batch = queue_.pop_batch(
        static_cast<std::size_t>(cfg_.batcher.max_batch_size));
    sink_.on_queue_depth(now, queue_.depth());
    const LatencyTable& table = degraded_ ? *fallback_ : latency_;
    const auto fate = faults_.draw_batch_fate();
    std::uint64_t busy = table.latency_us(batch.size());
    if (fate.spike) busy = faults_.spiked_latency_us(busy);
    auto& fl = running_[static_cast<std::size_t>(idle)];
    fl.active = true;
    fl.fail = fate.fail;
    fl.started_us = now;
    fl.done_us = now + busy;
    in_flight_requests_ += batch.size();
    touch(now);
    fl.batch = std::move(batch);
  }
}

std::uint64_t ShardSim::next_internal_event_us() const {
  std::uint64_t t = policy_wake_us_;
  if (!retries_.empty()) t = std::min(t, retries_.front().ready_us);
  for (const auto& fl : running_)
    if (fl.active) t = std::min(t, fl.done_us);
  return t;
}

std::uint64_t ShardSim::next_timer_us() const {
  std::uint64_t t = kNever;
  const int capacity = static_cast<int>(running_.size());
  for (int g = 0; g < capacity; ++g)
    t = std::min(t, faults_.next_transition_us(g));
  if (as_.enabled()) t = std::min(t, next_autoscale_us_);
  return t;
}

bool ShardSim::idle() const {
  return queue_.empty() && retries_.empty() && in_flight_requests_ == 0;
}

ServeMetrics ShardSim::finalize(std::uint64_t end_us) {
  if (degraded_) {
    sink_.add_degraded_us(end_us - degraded_since_);
    degraded_ = false;
  }
  if (as_.enabled()) {
    accrue_replica_time(end_us);
    sink_.add_replica_time_us(replica_time_integral_us_);
  }
  return sink_.finalize(cfg_.num_gpus, end_us, cfg_.slo_us);
}

ServeMetrics simulate_server(const std::vector<Request>& workload,
                             const LatencyTable& latency,
                             const ServerConfig& cfg,
                             const LatencyTable* fallback) {
  // The one-shard special case of the fleet loop (serve/cluster.h), kept
  // as the canonical single-server entry point. The step order below is
  // the determinism contract; reports are byte-identical to the
  // pre-ShardSim loop.
  ShardSim sim(latency, cfg, fallback);
  std::size_t next_arrival = 0;
  std::uint64_t now = 0;
  std::uint64_t end = 0;
  while (true) {
    sim.begin_step(now);
    // Admissions due at `now`: fresh arrivals first (ties: arrivals land
    // before dispatch decisions at the same timestamp), then retries
    // whose backoff has elapsed, in (ready time, request id) order.
    while (next_arrival < workload.size() &&
           workload[next_arrival].arrival_us <= now)
      sim.admit(now, workload[next_arrival++]);
    sim.admit_due_retries(now);
    sim.dispatch(now);
    // Advance to the next event: an arrival, a retry coming due, a batch
    // completion, the policy's wake-up, or a fault transition. Fault
    // transitions only keep the loop alive while work remains — the
    // infinite up/down schedule must not outlive the last request.
    std::uint64_t t_next = sim.next_internal_event_us();
    if (next_arrival < workload.size())
      t_next = std::min(t_next, workload[next_arrival].arrival_us);
    if (next_arrival >= workload.size() && sim.idle()) break;  // drained
    t_next = std::min(t_next, sim.next_timer_us());
    VITBIT_CHECK_MSG(t_next != kNever && t_next > now,
                     "event loop failed to advance");
    now = t_next;
    end = std::max(end, now);
  }

  const auto m = sim.finalize(end);
  VITBIT_CHECK_MSG(m.offered == m.completed + m.dropped + m.shed,
                   "request conservation violated at drain: offered "
                       << m.offered << " != completed " << m.completed
                       << " + dropped " << m.dropped << " + shed " << m.shed);
  return m;
}

std::vector<SweepPoint> run_rate_sweep(const SweepConfig& cfg,
                                       const arch::OrinSpec& spec,
                                       const arch::Calibration& calib,
                                       ThreadPool* pool) {
  VITBIT_CHECK_MSG(!cfg.strategies.empty(), "sweep needs >= 1 strategy");
  VITBIT_CHECK_MSG(!cfg.rates_rps.empty(), "sweep needs >= 1 rate");
  cfg.server.validate();

  // Phase 1: memoized latency tables through the shared validated
  // builder. The fallback strategy rides along only when degraded-mode
  // failover is enabled and it is not already being swept (the common
  // TC-next-to-VitBit sweep costs no extra simulations).
  const bool degrade_on = cfg.server.faults.degrade_below_live > 0;
  auto to_build = cfg.strategies;
  std::size_t fallback_idx = 0;
  if (degrade_on) {
    const auto it =
        std::find(to_build.begin(), to_build.end(), cfg.fallback_strategy);
    fallback_idx = static_cast<std::size_t>(it - to_build.begin());
    if (it == to_build.end()) to_build.push_back(cfg.fallback_strategy);
  }
  const auto tables =
      build_latency_tables(cfg.model, to_build, cfg.strategy_cfg, spec, calib,
                           cfg.server.batcher.max_batch_size, pool);
  const LatencyTable* fallback = degrade_on ? &tables[fallback_idx] : nullptr;

  // Phase 2: the event loop per (strategy, rate) point. Workloads are
  // regenerated per point from the shared seed, so both strategies at one
  // rate face identical request streams.
  const auto n_strategies = cfg.strategies.size();
  const auto n_rates = cfg.rates_rps.size();
  return parallel_map(pool, n_strategies * n_rates, [&](std::size_t i) {
    const std::size_t s = i / n_rates;
    const std::size_t r = i % n_rates;
    WorkloadConfig w = cfg.workload;
    w.rate_rps = cfg.rates_rps[r];
    SweepPoint point;
    point.strategy = cfg.strategies[s];
    point.rate_rps = cfg.rates_rps[r];
    point.metrics = simulate_server(generate_workload(w), tables[s],
                                    cfg.server, fallback);
    return point;
  });
}

Table sweep_table(const SweepConfig& cfg,
                  const std::vector<SweepPoint>& points) {
  Table t("serving simulation — " + std::string("rate sweep, ") +
          arrival_kind_name(cfg.workload.kind) + " arrivals, policy=" +
          cfg.server.policy);
  std::vector<std::string> header = {"rate (req/s)"};
  for (const auto s : cfg.strategies) {
    const std::string name = core::strategy_name(s);
    header.push_back(name + " goodput");
    header.push_back(name + " p99 (ms)");
    header.push_back(name + " drop %");
  }
  t.header(std::move(header));
  const auto n_rates = cfg.rates_rps.size();
  for (std::size_t r = 0; r < n_rates; ++r) {
    auto& row = t.row();
    row.cell(cfg.rates_rps[r], 1);
    for (std::size_t s = 0; s < cfg.strategies.size(); ++s) {
      const auto& m = points[s * n_rates + r].metrics;
      row.cell(m.goodput_rps, 1)
          .cell(static_cast<double>(m.p99_us) / 1e3, 3)
          .cell(m.drop_rate * 100.0, 2);
    }
  }
  return t;
}

std::vector<double> parse_number_list(const std::string& spec,
                                      const char* what,
                                      bool require_positive) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    VITBIT_CHECK_MSG(!item.empty(),
                     "empty entry in " << what << " list: " << spec);
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    // strtod happily parses "inf"/"nan" and saturates overflow to HUGE_VAL,
    // so the finiteness check is load-bearing, not belt-and-braces.
    const bool parsed = end != nullptr && *end == '\0' && std::isfinite(v);
    if (require_positive) {
      VITBIT_CHECK_MSG(parsed && v > 0.0,
                       what << "-list entry is not a positive finite number: "
                            << item);
    } else {
      VITBIT_CHECK_MSG(parsed && v >= 0.0,
                       what
                           << "-list entry is not a nonnegative finite number: "
                           << item);
    }
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<double> parse_rate_list(const std::string& spec) {
  return parse_number_list(spec, "rate", /*require_positive=*/true);
}

std::vector<std::string> parse_name_list(const std::string& spec,
                                         const char* what) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    VITBIT_CHECK_MSG(!item.empty(),
                     "empty entry in " << what << " list: " << spec);
    VITBIT_CHECK_MSG(std::find(out.begin(), out.end(), item) == out.end(),
                     "duplicate " << what << " in list: " << item);
    out.push_back(std::move(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<double> parse_weight_list(const std::string& spec) {
  return parse_number_list(spec, "weight", /*require_positive=*/true);
}

std::vector<double> parse_fraction_list(const std::string& spec,
                                        const char* what) {
  auto out = parse_number_list(spec, what, /*require_positive=*/false);
  double sum = 0.0;
  for (const double v : out) sum += v;
  VITBIT_CHECK_MSG(sum > 0.0, what << " list sums to zero: " << spec);
  return out;
}

SweepConfig sweep_config_from_cli(const Cli& cli) {
  SweepConfig cfg;
  cfg.model = nn::vit_base();
  cfg.model.num_layers =
      static_cast<int>(cli.get_int("layers", cfg.model.num_layers));

  if (cli.has("rates"))
    cfg.rates_rps = parse_rate_list(cli.get("rates", ""));
  else if (cli.has("rate"))
    cfg.rates_rps = {cli.get_double("rate", 0.0)};
  cfg.workload.kind = arrival_kind_from_name(cli.get("arrival", "poisson"));
  cfg.workload.duration_s = cli.get_double("duration-s", 2.0);
  cfg.workload.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  cfg.server.policy = cli.get("policy", "timeout");
  cfg.server.batcher.max_batch_size =
      static_cast<int>(cli.get_int("max-batch", 8));
  cfg.server.batcher.batch_timeout_us =
      static_cast<std::uint64_t>(cli.get_int("batch-timeout-us", 2000));
  cfg.server.batcher.queue_capacity =
      static_cast<int>(cli.get_int("queue-capacity", 64));
  cfg.server.num_gpus = static_cast<int>(cli.get_int("num-gpus", 1));
  cfg.server.slo_us = static_cast<std::uint64_t>(cli.get_int("slo-us", 50000));

  auto& f = cfg.server.faults;
  f.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  f.replica_mtbf_s = cli.get_double("mtbf-s", 0.0);
  f.replica_mttr_s = cli.get_double("mttr-s", 0.05);
  f.batch_failure_prob = cli.get_double("batch-fail-prob", 0.0);
  f.latency_spike_prob = cli.get_double("spike-prob", 0.0);
  f.latency_spike_mult = cli.get_double("spike-mult", 4.0);
  f.max_retries = static_cast<int>(cli.get_int("max-retries", 2));
  f.retry_backoff_us =
      static_cast<std::uint64_t>(cli.get_int("retry-backoff-us", 1000));
  f.degrade_below_live = static_cast<int>(cli.get_int("degrade-below", 0));

  const std::string fb = cli.get("fallback", "TC");
  bool found = false;
  for (const auto s : core::all_strategies())
    if (fb == core::strategy_name(s)) {
      cfg.fallback_strategy = s;
      found = true;
      break;
    }
  VITBIT_CHECK_MSG(found, "unknown fallback strategy: " << fb);

  cfg.server.validate();
  return cfg;
}

report::RunReport make_serve_report(const SweepConfig& cfg,
                                    const std::vector<SweepPoint>& points,
                                    const std::string& tool, int threads) {
  report::RunReport rep;
  rep.tool = tool;
  rep.meta = report::build_metadata();
  rep.meta["model"] = "vit";
  rep.meta["layers"] = std::to_string(cfg.model.num_layers);
  rep.meta["arrival"] = arrival_kind_name(cfg.workload.kind);
  rep.meta["duration_s"] = fmt_rate(cfg.workload.duration_s);
  rep.meta["seed"] = std::to_string(cfg.workload.seed);
  rep.meta["policy"] = cfg.server.policy;
  rep.meta["max_batch_size"] =
      std::to_string(cfg.server.batcher.max_batch_size);
  rep.meta["batch_timeout_us"] =
      std::to_string(cfg.server.batcher.batch_timeout_us);
  rep.meta["queue_capacity"] =
      std::to_string(cfg.server.batcher.queue_capacity);
  rep.meta["num_gpus"] = std::to_string(cfg.server.num_gpus);
  rep.meta["slo_us"] = std::to_string(cfg.server.slo_us);
  const auto& f = cfg.server.faults;
  rep.meta["fault_seed"] = std::to_string(f.seed);
  rep.meta["mtbf_s"] = fmt_rate(f.replica_mtbf_s);
  rep.meta["mttr_s"] = fmt_rate(f.replica_mttr_s);
  rep.meta["batch_fail_prob"] = fmt_rate(f.batch_failure_prob);
  rep.meta["spike_prob"] = fmt_rate(f.latency_spike_prob);
  rep.meta["spike_mult"] = fmt_rate(f.latency_spike_mult);
  rep.meta["max_retries"] = std::to_string(f.max_retries);
  rep.meta["retry_backoff_us"] = std::to_string(f.retry_backoff_us);
  rep.meta["degrade_below_live"] = std::to_string(f.degrade_below_live);
  rep.meta["fallback"] = core::strategy_name(cfg.fallback_strategy);
  rep.threads = threads;
  for (const auto& p : points) {
    report::ServePointReport sp;
    sp.strategy = core::strategy_name(p.strategy);
    sp.policy = cfg.server.policy;
    sp.arrival = arrival_kind_name(cfg.workload.kind);
    sp.rate_rps = p.rate_rps;
    sp.offered = p.metrics.offered;
    sp.completed = p.metrics.completed;
    sp.dropped = p.metrics.dropped;
    sp.batch_failures = p.metrics.batch_failures;
    sp.retries = p.metrics.retries;
    sp.requeued = p.metrics.requeued;
    sp.shed = p.metrics.shed;
    sp.failovers = p.metrics.failovers;
    sp.degraded_s = p.metrics.degraded_s;
    sp.batches = p.metrics.batches;
    sp.mean_batch_size = p.metrics.mean_batch_size;
    sp.drop_rate = p.metrics.drop_rate;
    sp.throughput_rps = p.metrics.throughput_rps;
    sp.goodput_rps = p.metrics.goodput_rps;
    sp.utilization = p.metrics.utilization;
    sp.mean_queue_depth = p.metrics.mean_queue_depth;
    sp.max_queue_depth = p.metrics.max_queue_depth;
    sp.p50_us = p.metrics.p50_us;
    sp.p90_us = p.metrics.p90_us;
    sp.p95_us = p.metrics.p95_us;
    sp.p99_us = p.metrics.p99_us;
    rep.serve_points.push_back(std::move(sp));
  }
  return rep;
}

}  // namespace vitbit::serve
