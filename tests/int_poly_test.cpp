#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "quant/int_exp.h"
#include "quant/int_poly.h"
#include "quant/shift_gelu.h"
#include "quant/shiftmax.h"

namespace vitbit::quant {
namespace {

constexpr int kFb = 10;
constexpr std::int32_t kOne = 1 << kFb;

TEST(IntErfPoly, MatchesErf) {
  // The I-BERT quadratic is fit for GELU, not for erf itself: its erf
  // intermediate carries up to ~0.10 error near x=0 (L(0) = a*b^2 + 1 =
  // 0.096) and tightens toward the tails. GELU (tested below) stays within
  // 0.03 because it multiplies by x, which vanishes exactly where the erf
  // error peaks.
  for (double x = -3.0; x <= 3.0; x += 0.01) {
    const auto q = static_cast<std::int32_t>(std::lround(x * kOne));
    const double got = int_erf_poly(q, kFb) / static_cast<double>(kOne);
    EXPECT_NEAR(got, std::erf(x), 0.105) << "x=" << x;
  }
  // Tails are tight.
  for (const double x : {1.5, 2.0, 2.5, -1.5, -2.0}) {
    const auto q = static_cast<std::int32_t>(std::lround(x * kOne));
    EXPECT_NEAR(int_erf_poly(q, kFb) / static_cast<double>(kOne), std::erf(x),
                0.02)
        << x;
  }
}

TEST(IntErfPoly, OddSymmetry) {
  for (const double x : {0.3, 0.9, 1.5, 2.4}) {
    const auto q = static_cast<std::int32_t>(std::lround(x * kOne));
    EXPECT_EQ(int_erf_poly(q, kFb), -int_erf_poly(-q, kFb)) << x;
  }
}

TEST(IntErfPoly, SaturatesOutsideClipRange) {
  EXPECT_EQ(int_erf_poly(10 * kOne, kFb), int_erf_poly(3 * kOne, kFb));
  EXPECT_EQ(int_erf_poly(-10 * kOne, kFb), int_erf_poly(-3 * kOne, kFb));
}

TEST(IntExpPoly, MatchesExp) {
  for (double x = 0.0; x >= -10.0; x -= 0.01) {
    const auto p = static_cast<std::int32_t>(std::lround(x * kOne));
    const double got = int_exp_poly(p, kFb) / static_cast<double>(kOne);
    EXPECT_NEAR(got, std::exp(x), 0.004) << "x=" << x;
  }
}

TEST(IntExpPoly, TighterThanShiftExp) {
  double worst_shift = 0, worst_poly = 0;
  for (double x = 0.0; x >= -6.0; x -= 0.005) {
    const auto p = static_cast<std::int32_t>(std::lround(x * kOne));
    const double want = std::exp(x);
    worst_shift = std::max(
        worst_shift,
        std::abs(int_exp_neg(p, kFb) / static_cast<double>(kOne) - want));
    worst_poly = std::max(
        worst_poly,
        std::abs(int_exp_poly(p, kFb) / static_cast<double>(kOne) - want));
  }
  EXPECT_LT(worst_poly, worst_shift)
      << "the 2nd-order polynomial should beat the linear-fraction shift";
}

TEST(IntExpPoly, MonotoneNonIncreasingTowardMinusInf) {
  std::int32_t prev = int_exp_poly(0, kFb);
  for (int i = 1; i <= 400; ++i) {
    const std::int32_t cur = int_exp_poly(-i * (kOne / 16), kFb);
    EXPECT_LE(cur, prev + 1) << i;  // +1 tolerance for rounding jitter
    prev = cur;
  }
  EXPECT_EQ(int_exp_poly(-100 * kOne, kFb), 0);
}

TEST(PolyGelu, MatchesReference) {
  MatrixF32 xf(1, 1601);
  MatrixI32 xi(1, 1601);
  for (int i = 0; i <= 1600; ++i) {
    const double x = -4.0 + 0.005 * i;
    xf.at(0, i) = static_cast<float>(x);
    xi.at(0, i) = static_cast<std::int32_t>(std::lround(x * kOne));
  }
  const auto want = gelu_erf_ref(xf);
  const auto got = poly_gelu(xi, kFb);
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(got.flat()[i] / static_cast<double>(kOne), want.flat()[i],
                0.03)
        << xf.flat()[i];
}

TEST(PolySoftmax, RowsSumToOne) {
  Rng rng(4);
  MatrixI32 logits(8, 40);
  fill_uniform(logits, rng, -(6 * kOne), 6 * kOne);
  const auto p = poly_softmax(logits, kFb, 14);
  for (int r = 0; r < p.rows(); ++r) {
    std::int64_t sum = 0;
    for (const auto v : p.row(r)) {
      EXPECT_GE(v, 0);
      sum += v;
    }
    EXPECT_NEAR(static_cast<double>(sum), 16384.0, 16384.0 * 0.02) << r;
  }
}

TEST(PolySoftmax, CloseToFloatReference) {
  Rng rng(5);
  MatrixF32 xf(6, 32);
  for (auto& v : xf.flat()) v = static_cast<float>(rng.normal(0.0, 2.0));
  MatrixI32 xi(6, 32);
  for (std::size_t i = 0; i < xf.size(); ++i)
    xi.flat()[i] = static_cast<std::int32_t>(std::lround(xf.flat()[i] * kOne));
  const auto got = poly_softmax(xi, kFb, 14);
  const auto want = softmax_ref(xf);
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(got.flat()[i] / 16384.0, want.flat()[i], 0.02);
}

}  // namespace
}  // namespace vitbit::quant
