// VitBit data preprocessing (paper Section 3.2, Algorithm 1): splits the
// input matrix B column-wise into B1 (packed, INT cores), B2 (converted to
// float, FP cores), and B3 (Tensor cores), and duplicates the weight matrix
// A into INT (A1) and float (A2) forms.
//
// Split rule (Algorithm 1 lines 3-6):
//   N3 = N * m / (1 + m)                       — Tensor-core share
//   N1 = (N - N3) * n / (1 + n), rounded to a multiple of the packing
//        factor                                — packed INT share (Eq. 1)
//   N2 = N - N3 - N1                           — FP share
#pragma once

#include "swar/pack.h"
#include "tensor/matrix.h"

namespace vitbit::core {

struct SplitWidths {
  int n1 = 0;  // INT (packed) columns
  int n2 = 0;  // FP columns
  int n3 = 0;  // Tensor-core columns
};

// Column widths per Algorithm 1 for an N-column input, Tensor:CUDA ratio m
// and INT:FP ratio n (= packing factor). With fp_slice=false the whole CUDA
// share goes to the INT slice (Tacker-style execution without FP cores).
SplitWidths split_widths(int n_total, int m_ratio, int n_ratio,
                         bool fp_slice = true);

struct PreprocessedInput {
  SplitWidths widths;
  swar::LaneLayout layout;
  // B1: columns [0, n1) packed for INT cores.
  swar::PackedMatrix b1;
  // B2: columns [n1, n1+n2) converted to float (static_cast, line 33).
  MatrixF32 b2;
  // B3: columns [n1+n2, N) for Tensor cores (zero-masked INT).
  MatrixI32 b3;
};

// Algorithm 1. `b` values must fit the layout's value range.
PreprocessedInput input_preprocessing(const MatrixI32& b, int m_ratio,
                                      int n_ratio,
                                      const swar::LaneLayout& layout,
                                      bool fp_slice = true);

struct PreprocessedWeights {
  MatrixI32 a1;  // original INT weights
  MatrixF32 a2;  // duplicated float weights (one-time setup conversion)
};

PreprocessedWeights weight_preprocessing(const MatrixI32& a);

}  // namespace vitbit::core
