#include "serve/sched/sched.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"
#include "common/cli.h"
#include "common/thread_pool.h"
#include "serve/fleet_loop.h"

namespace vitbit::serve {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

bool known_mode(const std::string& mode) {
  return mode == "fifo" || mode == "cb" || mode == "cb-pre";
}

// Comma-split without the uniqueness constraint of parse_name_list —
// per-class arrival-kind lists legitimately repeat ("poisson,poisson").
std::vector<std::string> split_list(const std::string& spec,
                                    const char* what) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    VITBIT_CHECK_MSG(!item.empty(),
                     "empty entry in " << what << " list: " << spec);
    out.push_back(std::move(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::string join_list(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& s : items) {
    if (!out.empty()) out += ",";
    out += s;
  }
  return out;
}

std::string join_nums(const std::vector<double>& items) {
  std::string out;
  for (const double v : items) {
    if (!out.empty()) out += ",";
    out += fmt_num(v);
  }
  return out;
}

}  // namespace

void SchedConfig::validate() const {
  VITBIT_CHECK_MSG(known_mode(mode),
                   "unknown scheduler mode: " << mode
                                              << " (want fifo|cb|cb-pre)");
  VITBIT_CHECK_MSG(num_gpus >= 1, "num_gpus must be >= 1");
  VITBIT_CHECK_MSG(max_batch >= 1, "max_batch must be >= 1");
  VITBIT_CHECK_MSG(queue_capacity >= 1, "queue_capacity must be >= 1");
  VITBIT_CHECK_MSG(iters >= 1, "iters must be >= 1");
  VITBIT_CHECK_MSG(slo_us >= 1, "slo_us must be >= 1");
  VITBIT_CHECK_MSG(!classes.empty(), "scheduler needs >= 1 class");
  for (std::size_t c = 0; c < classes.size(); ++c) {
    VITBIT_CHECK_MSG(
        std::isfinite(classes[c].weight) && classes[c].weight > 0.0,
        "class " << classes[c].name << " weight must be positive finite");
    VITBIT_CHECK_MSG(classes[c].slo_us >= 1,
                     "class " << classes[c].name << " slo_us must be >= 1");
  }
}

SchedSim::SchedSim(const ModelRegistry& registry, const SchedConfig& cfg,
                   PercentileMode percentiles, const AutoscaleConfig& autoscale)
    : registry_(registry),
      cfg_(cfg),
      as_(autoscale),
      preemptive_(cfg.mode == "cb-pre"),
      replicas_(static_cast<std::size_t>(
          autoscale.enabled() ? autoscale.max_replicas : cfg.num_gpus)),
      class_queues_(cfg.classes.size()),
      served_(cfg.classes.size(), 0),
      total_(percentiles,
             percentiles == PercentileMode::kSketch ? cfg.slo_us : 0),
      per_class_(
          [&cfg] {
            std::vector<std::uint64_t> slos;
            for (const auto& c : cfg.classes) slos.push_back(c.slo_us);
            return slos;
          }(),
          percentiles),
      per_model_(std::vector<std::uint64_t>(
                     static_cast<std::size_t>(registry.num_models()), 0),
                 percentiles) {
  cfg_.validate();
  as_.validate();
  for (int m = 0; m < registry_.num_models(); ++m)
    VITBIT_CHECK_MSG(registry_.table(m).max_batch() >= cfg_.max_batch,
                     "model " << registry_.name(m)
                              << " latency table covers batches up to "
                              << registry_.table(m).max_batch()
                              << ", scheduler needs " << cfg_.max_batch);
  enabled_ = as_.enabled() ? std::clamp(cfg_.num_gpus, as_.min_replicas,
                                        as_.max_replicas)
                           : cfg_.num_gpus;
  // The first evaluation lands one interval in; t = 0 has no signal yet.
  next_autoscale_us_ = as_.interval_us;
  tick_preempted_.assign(cfg_.classes.size(), 0);
  tick_completed_.assign(cfg_.classes.size(), 0);
  tick_missed_.assign(cfg_.classes.size(), 0);
}

std::size_t SchedSim::total_depth() const {
  std::size_t n = fifo_queue_.size();
  for (const auto& q : class_queues_) n += q.size();
  return n;
}

void SchedSim::begin_step(std::uint64_t now) {
  // Iteration (fifo: whole-batch) completions due at `now`, lowest
  // replica index first: record the executed iteration, then retire
  // residents whose last slice this was — against the total, class, and
  // model sinks — leaving the replica at a boundary for dispatch().
  for (auto& rep : replicas_) {
    if (!rep.running || rep.iter_done_us > now) continue;
    total_.on_batch(rep.batch.size(), rep.iter_done_us - rep.iter_start_us);
    rep.running = false;
    touch(now);
    std::vector<Resident> keep;
    keep.reserve(rep.batch.size());
    for (auto& res : rep.batch) {
      if (--res.remaining > 0) {
        keep.push_back(res);
        continue;
      }
      const auto& r = res.req;
      total_.on_completion(r.arrival_us, now);
      per_class_.at(static_cast<std::size_t>(r.cls))
          .on_completion(r.arrival_us, now);
      per_model_.at(static_cast<std::size_t>(r.model))
          .on_completion(r.arrival_us, now);
      ++tick_completed_[static_cast<std::size_t>(r.cls)];
      if (now - r.arrival_us >
          cfg_.classes[static_cast<std::size_t>(r.cls)].slo_us)
        ++tick_missed_[static_cast<std::size_t>(r.cls)];
    }
    rep.batch = std::move(keep);
  }
}

void SchedSim::admit(std::uint64_t now, const Request& r) {
  touch(now);
  VITBIT_CHECK_MSG(r.cls >= 0 &&
                       r.cls < static_cast<int>(cfg_.classes.size()),
                   "request class " << r.cls << " outside the "
                                    << cfg_.classes.size() << " classes");
  VITBIT_CHECK_MSG(r.model >= 0 && r.model < registry_.num_models(),
                   "request model " << r.model << " outside the "
                                    << registry_.num_models()
                                    << "-model registry");
  total_.on_offered();
  per_class_.at(static_cast<std::size_t>(r.cls)).on_offered();
  per_model_.at(static_cast<std::size_t>(r.model)).on_offered();
  if (total_depth() >= static_cast<std::size_t>(cfg_.queue_capacity)) {
    total_.on_drop();
    per_class_.at(static_cast<std::size_t>(r.cls)).on_drop();
    per_model_.at(static_cast<std::size_t>(r.model)).on_drop();
    return;
  }
  if (cfg_.mode == "fifo")
    fifo_queue_.push_back(r);
  else
    class_queues_[static_cast<std::size_t>(r.cls)].push_back(r);
  total_.on_queue_depth(now, total_depth());
}

bool wrr_prefers(double weight_c, std::uint64_t served_c, double weight_b,
                 std::uint64_t served_b) {
  // weight_c * (served_b + 1) > weight_b * (served_c + 1), exactly: each
  // weight splits into a 53-bit integer mantissa and an exponent (frexp
  // yields the mantissa in [0.5, 1), so scaling by 2^53 is lossless for
  // every positive finite double, denormals included), the mantissa-
  // times-count products fit 128 bits with room to spare (< 2^117), and
  // the exponent gap shifts the larger-exponent side back in. A shift
  // that would pass 2^127 decides the comparison outright — the other
  // side is bounded by 2^117.
  int ec = 0;
  int eb = 0;
  auto lhs = static_cast<unsigned __int128>(std::ldexp(
                 std::frexp(weight_c, &ec), 53)) *
             (static_cast<unsigned __int128>(served_b) + 1);
  auto rhs = static_cast<unsigned __int128>(std::ldexp(
                 std::frexp(weight_b, &eb), 53)) *
             (static_cast<unsigned __int128>(served_c) + 1);
  const auto bits = [](unsigned __int128 v) {
    int n = 0;
    while (v != 0) {
      v >>= 1;
      ++n;
    }
    return n;
  };
  if (const int x = ec - eb; x > 0) {
    if (bits(lhs) + x > 127) return true;
    lhs <<= x;
  } else if (x < 0) {
    if (bits(rhs) - x > 127) return false;
    rhs <<= -x;
  }
  return lhs > rhs;
}

int SchedSim::pick_class(int model) const {
  // Smooth weighted round-robin: the eligible class maximizing
  // weight / (served + 1), compared by exact cross-multiplication (see
  // wrr_prefers — plain double products silently starve low-weight
  // classes at extreme weight ratios); ties resolve to the lower class
  // index (the higher priority).
  int best = -1;
  for (int c = 0; c < static_cast<int>(class_queues_.size()); ++c) {
    const auto& q = class_queues_[static_cast<std::size_t>(c)];
    if (q.empty()) continue;
    if (model >= 0 && q.front().model != model) continue;
    if (best < 0) {
      best = c;
      continue;
    }
    if (wrr_prefers(cfg_.classes[static_cast<std::size_t>(c)].weight,
                    served_[static_cast<std::size_t>(c)],
                    cfg_.classes[static_cast<std::size_t>(best)].weight,
                    served_[static_cast<std::size_t>(best)]))
      best = c;
  }
  return best;
}

Request SchedSim::pop_class(int c) {
  auto& q = class_queues_[static_cast<std::size_t>(c)];
  const Request r = q.front();
  q.pop_front();
  return r;
}

void SchedSim::activate_model(Replica& rep, int model) {
  if (rep.model == model) return;
  std::uint64_t cost = 0;
  const auto it = std::find(rep.cache.begin(), rep.cache.end(), model);
  if (rep.model < 0 && rep.cache.empty()) {
    // First load: weights are staged before traffic (free), matching the
    // single-model tiers this scheduler must reproduce bit for bit.
  } else if (it != rep.cache.end()) {
    cost = registry_.warm_swap_us();
    ++model_swaps_;
  } else {
    cost = registry_.cold_swap_us(model);
    ++model_swaps_;
    ++cold_swaps_;
  }
  if (it != rep.cache.end()) rep.cache.erase(it);
  rep.cache.push_back(model);
  while (rep.cache.size() >
         static_cast<std::size_t>(registry_.cache_capacity()))
    rep.cache.erase(rep.cache.begin());
  rep.model = model;
  swap_us_ += cost;
  rep.pending_swap_us += cost;
}

void SchedSim::start_iteration(Replica& rep, std::uint64_t now) {
  const auto lat = registry_.table(rep.model).latency_us(rep.batch.size());
  std::uint64_t busy =
      cfg_.mode == "fifo"
          ? lat
          : std::max<std::uint64_t>(
                1, lat / static_cast<std::uint64_t>(cfg_.iters));
  busy += rep.pending_swap_us;
  rep.pending_swap_us = 0;
  rep.running = true;
  rep.iter_start_us = now;
  rep.iter_done_us = now + busy;
  touch(now);
}

bool SchedSim::urgent(std::uint64_t now, const Request& r) const {
  // Would miss its class deadline even dispatched alone right now —
  // waiting one more round-robin turn cannot end well.
  return now + registry_.table(r.model).latency_us(1) >
         r.arrival_us + cfg_.classes[static_cast<std::size_t>(r.cls)].slo_us;
}

void SchedSim::admit_urgent(Replica& rep, std::uint64_t now) {
  // Deadline-first pass (cb-pre): urgent queue heads are admitted ahead
  // of the round-robin order, highest priority class first. When the
  // batch is full, the most recently joined resident of a strictly lower
  // class is preempted — its partial work is lost and it restarts from
  // the front of its class queue (bypassing the admission bound: it was
  // already admitted once and must conserve).
  for (int c = 0; c < static_cast<int>(class_queues_.size()); ++c) {
    auto& q = class_queues_[static_cast<std::size_t>(c)];
    while (!q.empty() && urgent(now, q.front())) {
      const Request& head = q.front();
      if (rep.model >= 0 && !rep.batch.empty() && head.model != rep.model)
        break;  // cannot join a busy different-model batch
      if (rep.batch.size() >= static_cast<std::size_t>(cfg_.max_batch)) {
        std::size_t victim = rep.batch.size();
        for (std::size_t i = 0; i < rep.batch.size(); ++i) {
          if (rep.batch[i].req.cls <= c) continue;
          if (victim == rep.batch.size() ||
              rep.batch[i].req.cls > rep.batch[victim].req.cls ||
              (rep.batch[i].req.cls == rep.batch[victim].req.cls &&
               rep.batch[i].join_seq > rep.batch[victim].join_seq))
            victim = i;
        }
        if (victim == rep.batch.size()) break;  // nobody outranked
        const Request evicted = rep.batch[victim].req;
        rep.batch.erase(rep.batch.begin() +
                        static_cast<std::ptrdiff_t>(victim));
        class_queues_[static_cast<std::size_t>(evicted.cls)].push_front(
            evicted);
        ++preemptions_;
        ++tick_preempted_[static_cast<std::size_t>(evicted.cls)];
        total_.on_queue_depth(now, total_depth());
      }
      const Request r = pop_class(c);
      if (rep.batch.empty()) activate_model(rep, r.model);
      rep.batch.push_back({r, cfg_.iters, join_seq_++});
      ++served_[static_cast<std::size_t>(r.cls)];
      total_.on_queue_depth(now, total_depth());
    }
  }
}

void SchedSim::fill_wrr(Replica& rep, std::uint64_t now) {
  while (rep.batch.size() < static_cast<std::size_t>(cfg_.max_batch)) {
    const int constraint = rep.batch.empty() ? -1 : rep.model;
    const int c = pick_class(constraint);
    if (c < 0) return;
    const Request r = pop_class(c);
    if (rep.batch.empty()) activate_model(rep, r.model);
    rep.batch.push_back({r, cfg_.iters, join_seq_++});
    ++served_[static_cast<std::size_t>(r.cls)];
    total_.on_queue_depth(now, total_depth());
  }
}

void SchedSim::dispatch_fifo(std::uint64_t now) {
  // The pre-scheduler baseline: whole same-model prefix batches onto
  // idle replicas, lowest replica index first — the greedy flush policy
  // of serve/batcher.h restated over per-model latency tables.
  while (!fifo_queue_.empty()) {
    Replica* idle = nullptr;
    for (int g = 0; g < enabled_; ++g) {
      auto& rep = replicas_[static_cast<std::size_t>(g)];
      if (rep.batch.empty() && !rep.running) {
        idle = &rep;
        break;
      }
    }
    if (idle == nullptr) break;
    const int model = fifo_queue_.front().model;
    std::vector<Resident> batch;
    while (!fifo_queue_.empty() && fifo_queue_.front().model == model &&
           batch.size() < static_cast<std::size_t>(cfg_.max_batch)) {
      batch.push_back({fifo_queue_.front(), 1, join_seq_++});
      fifo_queue_.pop_front();
    }
    total_.on_queue_depth(now, total_depth());
    activate_model(*idle, model);
    idle->batch = std::move(batch);
    start_iteration(*idle, now);
  }
}

void SchedSim::dispatch_cb(std::uint64_t now) {
  // Every replica standing at an iteration boundary (or idle) refills:
  // finished residents already left in begin_step, queued same-model
  // requests join, and the next iteration is scheduled from the current
  // batch size. An emptied replica may switch models (swap charged to
  // the first iteration of the new batch).
  for (int g = 0; g < enabled_; ++g) {
    auto& rep = replicas_[static_cast<std::size_t>(g)];
    if (rep.running) continue;  // mid-iteration
    if (preemptive_) admit_urgent(rep, now);
    fill_wrr(rep, now);
    if (rep.batch.empty()) continue;  // nothing eligible; replica idles
    start_iteration(rep, now);
  }
}

void SchedSim::dispatch(std::uint64_t now) {
  if (cfg_.mode == "fifo")
    dispatch_fifo(now);
  else
    dispatch_cb(now);
}

void SchedSim::accrue_replica_time(std::uint64_t now) {
  replica_time_integral_us_ += static_cast<std::uint64_t>(enabled_) *
                               (now - last_enabled_change_us_);
  last_enabled_change_us_ = now;
}

std::uint64_t SchedSim::cooldown_expiry_us(std::uint64_t t) const {
  // Saturating t + cooldown, same contract as ShardSim: a near-uint64-max
  // cooldown means "never scale again", not an overflow past zero that
  // re-arms at the very next tick.
  return t > kNever - as_.cooldown_us ? kNever : t + as_.cooldown_us;
}

void SchedSim::maybe_autoscale(std::uint64_t now) {
  if (!as_.enabled()) return;
  while (next_autoscale_us_ <= now) {
    const std::uint64_t t = next_autoscale_us_;
    next_autoscale_us_ += as_.interval_us;
    // Per-class signal rates over the closing interval. The counters
    // reset at every tick — cooldown or not — so each decision sees one
    // interval's worth of signal, never a backlog.
    bool class_hot = false;
    for (std::size_t c = 0; c < cfg_.classes.size(); ++c) {
      if (as_.up_preempt_per_s > 0.0 &&
          static_cast<double>(tick_preempted_[c]) * 1e6 /
                  static_cast<double>(as_.interval_us) >
              as_.up_preempt_per_s)
        class_hot = true;
      if (as_.up_slo_miss_rate > 0.0 && tick_completed_[c] > 0 &&
          static_cast<double>(tick_missed_[c]) /
                  static_cast<double>(tick_completed_[c]) >
              as_.up_slo_miss_rate)
        class_hot = true;
      tick_preempted_[c] = 0;
      tick_completed_[c] = 0;
      tick_missed_[c] = 0;
    }
    if (t < cooldown_until_us_) continue;
    const std::size_t depth = total_depth();
    const bool hot = class_hot || depth > as_.up_queue_depth ||
                     (as_.up_p99_us > 0 &&
                      total_.running_p99_us() > as_.up_p99_us);
    if (hot && enabled_ < as_.max_replicas) {
      accrue_replica_time(t);
      ++enabled_;
      ++scale_ups_;
      cooldown_until_us_ = cooldown_expiry_us(t);
      touch(t);
      continue;
    }
    // Only a replica that is neither running nor holding residents is
    // retired — never abort or strand partial work.
    const auto& top = replicas_[static_cast<std::size_t>(enabled_ - 1)];
    if (!hot && depth <= as_.down_queue_depth &&
        enabled_ > as_.min_replicas && !top.running && top.batch.empty()) {
      accrue_replica_time(t);
      --enabled_;
      ++scale_downs_;
      cooldown_until_us_ = cooldown_expiry_us(t);
      touch(t);
    }
  }
}

std::uint64_t SchedSim::next_timer_us() const {
  return as_.enabled() ? next_autoscale_us_ : kNever;
}

std::size_t SchedSim::load() const {
  std::size_t n = total_depth();
  for (const auto& rep : replicas_) n += rep.batch.size();
  return n;
}

bool SchedSim::warm_for(int model) const {
  for (int g = 0; g < enabled_; ++g) {
    const auto& rep = replicas_[static_cast<std::size_t>(g)];
    if (rep.model == model) return true;
    if (std::find(rep.cache.begin(), rep.cache.end(), model) !=
        rep.cache.end())
      return true;
  }
  return false;
}

void SchedSim::prestage(int model) {
  VITBIT_CHECK_MSG(model >= 0 && model < registry_.num_models(),
                   "prestage model " << model << " outside the "
                                     << registry_.num_models()
                                     << "-model registry");
  // Every replica — including ones beyond the enabled window — so a
  // later scale-up comes online warm for the placed model.
  for (auto& rep : replicas_) {
    rep.model = model;
    rep.cache.assign(1, model);
  }
}

const MetricsSink& SchedSim::class_sink(std::size_t c) const {
  return per_class_.at(c);
}

const MetricsSink& SchedSim::model_sink(std::size_t m) const {
  return per_model_.at(m);
}

std::uint64_t SchedSim::next_internal_event_us() const {
  std::uint64_t t = kNever;
  for (const auto& rep : replicas_)
    if (rep.running) t = std::min(t, rep.iter_done_us);
  return t;
}

bool SchedSim::idle() const {
  if (total_depth() != 0) return false;
  for (const auto& rep : replicas_)
    if (!rep.batch.empty()) return false;
  return true;
}

SchedMetrics SchedSim::finalize(std::uint64_t end_us) {
  if (as_.enabled()) {
    // Exact available-replica-time under autoscaling; without it the
    // sink falls back to num_gpus * end_us (the fixed-pool case).
    accrue_replica_time(end_us);
    total_.add_replica_time_us(replica_time_integral_us_);
  }
  SchedMetrics m;
  m.total = total_.finalize(cfg_.num_gpus, end_us, cfg_.slo_us);
  m.per_class = per_class_.finalize(cfg_.num_gpus, end_us);
  m.per_model = per_model_.finalize(cfg_.num_gpus, end_us);
  m.preemptions = preemptions_;
  m.model_swaps = model_swaps_;
  m.cold_swaps = cold_swaps_;
  m.swap_us = swap_us_;
  return m;
}

namespace {

// The one driving loop behind both simulate_sched overloads; `Source`
// exposes has_next / peek_arrival_us / next (WorkloadStream shape).
// Since the sched/cluster unification this is the shared fleet loop
// degenerated to one shard and a constant route — the event sequence
// (begin_step, admit arrivals, dispatch, advance) is identical to the
// pre-unification scheduler loop, which the committed sched_sweep
// baseline pins byte for byte.
template <typename Source>
SchedMetrics drive_sched(Source& source, const ModelRegistry& registry,
                         const SchedConfig& cfg, PercentileMode percentiles) {
  SchedSim sim(registry, cfg, percentiles);
  const std::vector<SchedSim*> shards = {&sim};
  const std::uint64_t end = drive_fleet_loop(
      source, shards,
      [](const Request&, const std::vector<std::size_t>&) { return 0; });
  auto m = sim.finalize(end);
  VITBIT_CHECK_MSG(m.total.offered == m.total.completed + m.total.dropped,
                   "request conservation violated at drain: offered "
                       << m.total.offered << " != completed "
                       << m.total.completed << " + dropped "
                       << m.total.dropped);
  for (std::size_t c = 0; c < m.per_class.size(); ++c)
    VITBIT_CHECK_MSG(m.per_class[c].offered ==
                         m.per_class[c].completed + m.per_class[c].dropped,
                     "class " << c << " conservation violated at drain");
  return m;
}

// Vector-of-requests adapter with the WorkloadStream surface.
struct VectorSource {
  const std::vector<Request>& workload;
  std::size_t next_idx = 0;

  bool has_next() const { return next_idx < workload.size(); }
  std::uint64_t peek_arrival_us() const {
    return workload[next_idx].arrival_us;
  }
  Request next() { return workload[next_idx++]; }
};

}  // namespace

SchedMetrics simulate_sched(const std::vector<Request>& workload,
                            const ModelRegistry& registry,
                            const SchedConfig& cfg,
                            PercentileMode percentiles) {
  VectorSource source{workload};
  return drive_sched(source, registry, cfg, percentiles);
}

SchedMetrics simulate_sched(const MixedWorkloadConfig& workload,
                            const ModelRegistry& registry,
                            const SchedConfig& cfg,
                            PercentileMode percentiles) {
  MixedWorkloadStream stream(workload);
  return drive_sched(stream, registry, cfg, percentiles);
}

void SchedSweepConfig::validate() const {
  VITBIT_CHECK_MSG(!model_names.empty(), "sweep needs >= 1 model");
  VITBIT_CHECK_MSG(!modes.empty(), "sweep needs >= 1 mode");
  for (const auto& m : modes)
    VITBIT_CHECK_MSG(known_mode(m), "unknown scheduler mode: "
                                        << m << " (want fifo|cb|cb-pre)");
  VITBIT_CHECK_MSG(!rates_rps.empty(), "sweep needs >= 1 rate");
  VITBIT_CHECK_MSG(workload.classes.size() == sched.classes.size(),
                   "traffic classes (" << workload.classes.size()
                                       << ") and scheduling classes ("
                                       << sched.classes.size()
                                       << ") must pair up");
  sched.validate();
  swap.validate();
}

std::vector<SchedPoint> run_sched_sweep(const SchedSweepConfig& cfg,
                                        const arch::OrinSpec& spec,
                                        const arch::Calibration& calib,
                                        ThreadPool* pool) {
  cfg.validate();
  // Phase 1: one memoized latency table per zoo model, through the
  // shared validated builder.
  const ModelRegistry registry(cfg.model_names, cfg.strategy, spec, calib,
                               cfg.sched.max_batch, cfg.swap, pool);
  // Phase 2: the event loop per (mode, rate) point. The workload is
  // regenerated per point from the shared seed, so every mode at one
  // rate faces the byte-identical request stream.
  const auto n_modes = cfg.modes.size();
  const auto n_rates = cfg.rates_rps.size();
  return parallel_map(pool, n_modes * n_rates, [&](std::size_t i) {
    const std::size_t mi = i / n_rates;
    const std::size_t r = i % n_rates;
    MixedWorkloadConfig w = cfg.workload;
    w.rate_rps = cfg.rates_rps[r];
    w.num_models = static_cast<int>(cfg.model_names.size());
    SchedConfig s = cfg.sched;
    s.mode = cfg.modes[mi];
    SchedPoint point;
    point.mode = s.mode;
    point.rate_rps = w.rate_rps;
    point.metrics = simulate_sched(w, registry, s, cfg.percentiles);
    return point;
  });
}

Table sched_table(const SchedSweepConfig& cfg,
                  const std::vector<SchedPoint>& points) {
  Table t("continuous-batching scheduler — mode sweep over " +
          join_list(cfg.model_names));
  std::vector<std::string> header = {"mode",    "rate (req/s)", "goodput",
                                     "p99 (ms)", "drop %",      "preempt",
                                     "swaps"};
  for (const auto& c : cfg.sched.classes)
    header.push_back(c.name + " p99 (ms)");
  t.header(std::move(header));
  for (const auto& p : points) {
    auto& row = t.row();
    row.cell(p.mode)
        .cell(p.rate_rps, 1)
        .cell(p.metrics.total.goodput_rps, 1)
        .cell(static_cast<double>(p.metrics.total.p99_us) / 1e3, 3)
        .cell(p.metrics.total.drop_rate * 100.0, 2)
        .cell(static_cast<double>(p.metrics.preemptions), 0)
        .cell(static_cast<double>(p.metrics.model_swaps), 0);
    for (const auto& cm : p.metrics.per_class)
      row.cell(static_cast<double>(cm.p99_us) / 1e3, 3);
  }
  return t;
}

SchedSweepConfig sched_config_from_cli(const Cli& cli) {
  SchedSweepConfig cfg;
  cfg.model_names = parse_name_list(cli.get("models", "vit-b"), "model");

  const std::string strat = cli.get("strategy", "VitBit");
  bool found = false;
  for (const auto s : core::all_strategies())
    if (strat == core::strategy_name(s)) {
      cfg.strategy = s;
      found = true;
      break;
    }
  VITBIT_CHECK_MSG(found, "unknown strategy: " << strat);

  cfg.modes = parse_name_list(cli.get("modes", "fifo,cb,cb-pre"), "mode");
  if (cli.has("rates"))
    cfg.rates_rps = parse_rate_list(cli.get("rates", ""));
  else if (cli.has("rate"))
    cfg.rates_rps = {cli.get_double("rate", 0.0)};

  const auto class_names =
      parse_name_list(cli.get("classes", "default"), "class");
  const auto n = class_names.size();
  auto per_class = [&](const char* flag, std::vector<double> vals,
                       const char* what) {
    if (vals.size() == 1 && n > 1) vals.assign(n, vals[0]);
    VITBIT_CHECK_MSG(vals.size() == n, "--" << flag << " has " << vals.size()
                                            << " entries for " << n << " "
                                            << what);
    return vals;
  };
  const auto weights = per_class(
      "weights", cli.has("weights") ? parse_weight_list(cli.get("weights", ""))
                                    : std::vector<double>{1.0},
      "classes");
  const auto slos = per_class(
      "slos-us",
      cli.has("slos-us") ? parse_number_list(cli.get("slos-us", ""), "slo",
                                             /*require_positive=*/true)
                         : std::vector<double>{50000.0},
      "classes");
  const auto shares = per_class(
      "shares",
      cli.has("shares") ? parse_fraction_list(cli.get("shares", ""), "share")
                        : std::vector<double>{1.0},
      "classes");
  auto arrivals = split_list(cli.get("arrivals", "poisson"), "arrival");
  if (arrivals.size() == 1 && n > 1) arrivals.assign(n, arrivals[0]);
  VITBIT_CHECK_MSG(arrivals.size() == n, "--arrivals has " << arrivals.size()
                                                           << " entries for "
                                                           << n
                                                           << " classes");

  cfg.sched.classes.clear();
  cfg.workload.classes.clear();
  const std::vector<double> shared_mix =
      cli.has("mix") ? parse_fraction_list(cli.get("mix", ""), "mix")
                     : std::vector<double>{};
  for (std::size_t c = 0; c < n; ++c) {
    ClassSpec spec;
    spec.name = class_names[c];
    spec.weight = weights[c];
    spec.slo_us = static_cast<std::uint64_t>(std::llround(slos[c]));
    cfg.sched.classes.push_back(std::move(spec));

    ClassTraffic traffic;
    traffic.kind = arrival_kind_from_name(arrivals[c]);
    traffic.rate_share = shares[c];
    traffic.burst_on_s = cli.get_double("burst-on-s", traffic.burst_on_s);
    traffic.burst_off_s = cli.get_double("burst-off-s", traffic.burst_off_s);
    const std::string mix_flag = "mix" + std::to_string(c);
    if (cli.has(mix_flag))
      traffic.model_mix = parse_fraction_list(cli.get(mix_flag, ""), "mix");
    else
      traffic.model_mix = shared_mix;
    if (!traffic.model_mix.empty())
      VITBIT_CHECK_MSG(traffic.model_mix.size() == cfg.model_names.size(),
                       "class " << class_names[c] << " model mix has "
                                << traffic.model_mix.size()
                                << " entries for " << cfg.model_names.size()
                                << " models");
    cfg.workload.classes.push_back(std::move(traffic));
  }

  cfg.workload.duration_s = cli.get_double("duration-s", 2.0);
  cfg.workload.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  cfg.sched.max_batch = static_cast<int>(cli.get_int("max-batch", 8));
  cfg.sched.queue_capacity =
      static_cast<int>(cli.get_int("queue-capacity", 64));
  cfg.sched.num_gpus = static_cast<int>(cli.get_int("num-gpus", 1));
  cfg.sched.iters = static_cast<int>(cli.get_int("iters", 4));
  cfg.sched.slo_us = static_cast<std::uint64_t>(cli.get_int("slo-us", 50000));

  cfg.swap.cache_models = static_cast<int>(cli.get_int("cache-models", 1));
  cfg.swap.load_gbps = cli.get_double("load-gbps", cfg.swap.load_gbps);
  cfg.swap.warm_swap_us =
      static_cast<std::uint64_t>(cli.get_int("warm-swap-us", 200));

  cfg.percentiles = cli.get_bool("exact", false) ? PercentileMode::kExact
                                                 : PercentileMode::kSketch;

  cfg.validate();
  return cfg;
}

report::RunReport make_sched_report(const SchedSweepConfig& cfg,
                                    const std::vector<SchedPoint>& points,
                                    const std::string& tool, int threads) {
  report::RunReport rep;
  rep.tool = tool;
  rep.meta = report::build_metadata();
  rep.meta["models"] = join_list(cfg.model_names);
  rep.meta["strategy"] = core::strategy_name(cfg.strategy);
  rep.meta["modes"] = join_list(cfg.modes);
  {
    std::vector<std::string> names, arrivals;
    std::vector<double> weights, slos, shares;
    for (const auto& c : cfg.sched.classes) {
      names.push_back(c.name);
      weights.push_back(c.weight);
      slos.push_back(static_cast<double>(c.slo_us));
    }
    for (std::size_t c = 0; c < cfg.workload.classes.size(); ++c) {
      const auto& t = cfg.workload.classes[c];
      arrivals.push_back(arrival_kind_name(t.kind));
      shares.push_back(t.rate_share);
      rep.meta["mix" + std::to_string(c)] = join_nums(t.model_mix);
    }
    rep.meta["classes"] = join_list(names);
    rep.meta["weights"] = join_nums(weights);
    rep.meta["slos_us"] = join_nums(slos);
    rep.meta["shares"] = join_nums(shares);
    rep.meta["arrivals"] = join_list(arrivals);
  }
  rep.meta["duration_s"] = fmt_num(cfg.workload.duration_s);
  rep.meta["seed"] = std::to_string(cfg.workload.seed);
  rep.meta["max_batch"] = std::to_string(cfg.sched.max_batch);
  rep.meta["queue_capacity"] = std::to_string(cfg.sched.queue_capacity);
  rep.meta["num_gpus"] = std::to_string(cfg.sched.num_gpus);
  rep.meta["iters"] = std::to_string(cfg.sched.iters);
  rep.meta["slo_us"] = std::to_string(cfg.sched.slo_us);
  rep.meta["cache_models"] = std::to_string(cfg.swap.cache_models);
  rep.meta["load_gbps"] = fmt_num(cfg.swap.load_gbps);
  rep.meta["warm_swap_us"] = std::to_string(cfg.swap.warm_swap_us);
  rep.meta["percentiles"] =
      cfg.percentiles == PercentileMode::kExact ? "exact" : "sketch";
  rep.threads = threads;

  auto fill = [](report::SchedPointReport& sp, const ServeMetrics& m) {
    sp.offered = m.offered;
    sp.completed = m.completed;
    sp.dropped = m.dropped;
    sp.batches = m.batches;
    sp.mean_batch_size = m.mean_batch_size;
    sp.drop_rate = m.drop_rate;
    sp.throughput_rps = m.throughput_rps;
    sp.goodput_rps = m.goodput_rps;
    sp.mean_queue_depth = m.mean_queue_depth;
    sp.max_queue_depth = m.max_queue_depth;
    sp.p50_us = m.p50_us;
    sp.p90_us = m.p90_us;
    sp.p95_us = m.p95_us;
    sp.p99_us = m.p99_us;
  };
  for (const auto& p : points) {
    report::SchedPointReport all;
    all.mode = p.mode;
    all.scope = "all";
    all.group = "all";
    all.rate_rps = p.rate_rps;
    fill(all, p.metrics.total);
    all.utilization = p.metrics.total.utilization;
    all.preemptions = p.metrics.preemptions;
    all.model_swaps = p.metrics.model_swaps;
    all.swap_us = p.metrics.swap_us;
    rep.sched_points.push_back(std::move(all));
    for (std::size_t c = 0; c < p.metrics.per_class.size(); ++c) {
      report::SchedPointReport sp;
      sp.mode = p.mode;
      sp.scope = "class";
      sp.group = cfg.sched.classes[c].name;
      sp.rate_rps = p.rate_rps;
      fill(sp, p.metrics.per_class[c]);
      rep.sched_points.push_back(std::move(sp));
    }
    for (std::size_t m = 0; m < p.metrics.per_model.size(); ++m) {
      report::SchedPointReport sp;
      sp.mode = p.mode;
      sp.scope = "model";
      sp.group = cfg.model_names[m];
      sp.rate_rps = p.rate_rps;
      fill(sp, p.metrics.per_model[m]);
      rep.sched_points.push_back(std::move(sp));
    }
  }
  return rep;
}

}  // namespace vitbit::serve
