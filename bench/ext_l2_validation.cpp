// Extension bench: validates the calibrated single-SM model's static L2
// derates against a full multi-SM simulation with an addressed, shared,
// set-associative 4MB L2 (sim/gpu_sim.h). The two models should agree on
// orderings and rough factors; the L2 columns also report measured hit
// rates, the quantity the derates stand in for.
#include <iostream>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/table.h"
#include "sim/gpu_sim.h"
#include "sim/launcher.h"
#include "trace/gemm_traces.h"

namespace vitbit {
namespace {

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  const arch::OrinSpec spec;
  const auto& calib = arch::default_calibration();
  auto pool = bench::make_pool(cli);
  trace::GemmShape shape{197, 768, 3072, 1};
  shape.n = static_cast<int>(cli.get_int("n", shape.n));

  struct Row {
    const char* name;
    trace::GemmBlockPlan plan;
  };
  const std::vector<Row> rows = {
      {"TC", trace::plan_tc(calib)},
      {"IC", trace::plan_ic(calib)},
      {"IC+FC+P", trace::plan_ic_fc_packed(calib)},
      {"VitBit", trace::plan_vitbit(calib, 12)},
  };

  Table t("Extension — derate model vs full multi-SM L2 simulation (GEMM " +
          std::to_string(shape.m) + "x" + std::to_string(shape.k) + "x" +
          std::to_string(shape.n) + ")");
  t.header({"kernel", "derate model (cyc)", "L2 model (cyc)", "L2/derate",
            "L2 hit rate"});
  struct Swept {
    std::uint64_t derate_cycles = 0, l2_cycles = 0;
    double l2_hit_rate = 0.0;
  };
  // Each row runs the derate model, the L2-derate launcher, and a full
  // multi-SM simulation — all independent across rows.
  const auto swept = parallel_map(&pool, rows.size(), [&](std::size_t i) {
    const auto kernel =
        trace::build_gemm_kernel(shape, rows[i].plan, spec, calib);
    const auto geom = trace::gemm_grid_geom(shape, rows[i].plan, spec);
    Swept out;
    out.derate_cycles = sim::launch_kernel(kernel, spec, calib).total_cycles;
    out.l2_cycles =
        sim::launch_kernel_l2(kernel, geom, spec, calib).total_cycles;
    sim::GpuSim gpu(spec, calib);
    out.l2_hit_rate =
        gpu.run(kernel, geom, sim::occupancy_blocks_per_sm(kernel, spec))
            .l2_hit_rate;
    return out;
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& s = swept[i];
    t.row()
        .cell(rows[i].name)
        .cell(s.derate_cycles)
        .cell(s.l2_cycles)
        .cell(static_cast<double>(s.l2_cycles) /
                  static_cast<double>(s.derate_cycles),
              2)
        .cell(s.l2_hit_rate, 3);
  }
  bench::emit(t, cli);
  std::cout << "\nBoth models must order the kernels identically; the"
               " absolute\ngap quantifies what the static derates"
               " (a_operand_l2_derate = "
            << calib.a_operand_l2_derate
            << ",\nb = " << calib.b_operand_l2_derate
            << ") abstract away.\n";
  return 0;
}

}  // namespace
}  // namespace vitbit

int main(int argc, char** argv) {
  return vitbit::bench::guarded_main(argc, argv, vitbit::run);
}
