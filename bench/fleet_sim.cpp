// Extension bench: sharded fleet sweep. Routes an open-loop request
// stream across many batcher+server shards under a balancing policy and
// reports, per arrival rate, goodput, p99, drop rate, and the per-shard
// utilization spread of round-robin next to join-shortest-queue and
// power-of-two-choices — the classic load-balancing comparison, run on
// VitBit-calibrated batch latencies. Latencies stream through P² sketches
// and arrivals through WorkloadStream, so peak sink memory is independent
// of the request count: 10^7-request points are routine.
//
//   fleet_sim [--shards=4] [--routes=rr,jsq,po2c] [--route=jsq]
//             [--route-seed=1] [--strategy=VitBit] [--rates=2000,...]
//             [--rate=N] [--arrival=poisson] [--duration-s=2] [--seed=42]
//             [--policy=timeout] [--max-batch=8] [--batch-timeout-us=2000]
//             [--queue-capacity=64] [--replicas=1] [--slo-us=50000]
//             [--layers=12] [--exact] [--threads=N] [--csv] [--json=PATH]
//
// Autoscaling (on when --max-replicas > --min-replicas):
//             [--min-replicas=REPLICAS] [--max-replicas=MIN]
//             [--scale-interval-us=50000] [--scale-up-depth=16]
//             [--scale-down-depth=2] [--scale-p99-us=0]
//             [--scale-cooldown-us=200000]
//
// Fault injection (serve/faults.h; every process off by default):
//             [--fault-seed=1] [--mtbf-s=0] [--mttr-s=0.05]
//             [--batch-fail-prob=0] [--spike-prob=0] [--spike-mult=4]
//             [--max-retries=2] [--retry-backoff-us=1000]
//             [--degrade-below=0] [--fallback=TC]
//
// --json writes a schema-versioned run report (fleet_points section) —
// the document CI diffs across --threads=1/2/4 byte-for-byte (three
// counts, because the sketch merge is order-sensitive).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "serve/cluster.h"

namespace vitbit {
namespace {

int run(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  const Cli cli(argc, argv);
  const arch::OrinSpec spec;
  const auto& calib = arch::default_calibration();
  auto pool = bench::make_pool(cli);

  // The one flag set shared with `vitbit_cli fleet`, validated on return.
  const auto cfg = serve::fleet_config_from_cli(cli);
  const bool csv = cli.get_bool("csv", false);
  const std::string json = cli.json_path();

  // Reject typos before the expensive sweep: a misspelled knob silently
  // reverting to its default would invalidate the whole table.
  if (const auto typos = cli.unused(); !typos.empty()) {
    std::cerr << "fleet_sim: unknown flag --" << typos.front() << "\n";
    return 2;
  }

  const auto points = serve::run_fleet_sweep(cfg, spec, calib, &pool);
  const auto t = serve::fleet_table(cfg, points);
  if (csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);

  if (!json.empty()) {
    auto rep = serve::make_fleet_report(cfg, points, "fleet_sim",
                                        pool.size());
    rep.host_wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    report::save_report_file(json, rep);
  }

  std::cout << "\nEach policy faces the same request stream. Blind "
               "round-robin leaves\nsome shards idle while others queue; "
               "two random probes (po2c) close\nmost of the gap to the "
               "full join-shortest-queue scan — watch the p99\nand "
               "utilization-spread columns converge.\n";
  return 0;
}

}  // namespace
}  // namespace vitbit

int main(int argc, char** argv) {
  return vitbit::bench::guarded_main(argc, argv, vitbit::run);
}
