// Cycle-level simulator of one Streaming Multiprocessor:
//  * 4 sub-cores ("processing blocks"), each with one warp scheduler that
//    issues at most one instruction per cycle (loose round-robin), a 16-lane
//    INT32 pipe, a 16-lane FP32 pipe, an SFU, and a tensor core — the
//    Ampere organization of Figure 1 that lets INT, FP, and tensor units
//    run concurrently, which VitBit exploits;
//  * a register scoreboard per warp (in-order issue, latency-checked reads);
//  * an SM-wide LSU with byte-throughput occupancy and a DRAM model with
//    fixed latency plus a per-SM bandwidth share (the mechanism that makes
//    tensor-core GEMM memory-bound at the paper's ratios);
//  * thread-block barriers.
//
// Hot-state layout (the inner loop under every figure bench, the tuner,
// and the serving tiers' memoized latency tables):
//  * per-sub-core `issuable` bitsets (common/bitset64.h) mask out done and
//    at-barrier warps, so the round-robin scan is a find-first-set over
//    one or two words instead of a walk over every resident warp;
//  * done / at-barrier flags live in SM-wide bitsets instead of scattered
//    per-warp bools;
//  * the scoreboard is tracked incrementally: a per-warp pending-writeback
//    mask bounds the dependence check to registers with outstanding
//    writes, and a per-warp running max over scheduled writebacks answers
//    the EXIT drain ("wait for every outstanding write") in O(1) instead
//    of the historical O(num_regs) scan over reg_ready;
//  * a dependence-stalled warp is parked out of the candidate mask until
//    its (fixed) wake cycle, so the issue scan fails each stall once
//    instead of once per cycle until the writeback lands;
//  * the DRAM-channel virtual clock is a Q32.32 integer accumulator — the
//    integer virtual-time core holds no floating-point state that could
//    drift across compilers.
//
// SmSimRef (sim/sm_sim_ref.h) preserves the previous layout verbatim;
// tests/sim_packed_test.cpp proves both produce byte-identical SmStats,
// and the check_regression `sim_loop` gate keeps the packed layout's host
// speedup above a committed floor.
#pragma once

#include <array>
#include <cmath>
#include <vector>

#include "arch/calibration.h"
#include "arch/orin_spec.h"
#include "common/bitset64.h"
#include "sim/program.h"
#include "sim/stats.h"

namespace vitbit::sim {

// Pluggable global-memory service for addressed accesses: given a physical
// address, transfer size and current cycle, returns the completion cycle.
// Implemented by GpuSim (shared L2 + DRAM); when absent, SmSim falls back
// to its private bandwidth-share model using Instr::dram_bytes.
class GlobalMemory {
 public:
  virtual ~GlobalMemory() = default;
  virtual std::uint64_t access(std::uint64_t addr, std::uint32_t bytes,
                               std::uint64_t now, bool is_store) = 0;
};

// The per-SM DRAM channel's virtual clock runs in Q32.32 fixed-point
// cycles: 32 fractional bits resolve one byte's transfer time (~0.09
// cycles at the Orin share) to ~2e-11 cycles, and the integer part holds
// the full 4e8-cycle deadlock guard without overflow. The only floating
// point is one construction-time conversion of the spec's bytes-per-cycle
// rate; all per-access arithmetic is integer.
inline constexpr int kDramFracBits = 32;

inline std::uint64_t dram_q32_per_byte(const arch::OrinSpec& spec) {
  return static_cast<std::uint64_t>(
      std::llround(std::ldexp(1.0 / spec.dram_bytes_per_cycle_per_sm(),
                              kDramFracBits)));
}

// Smallest whole cycle >= the Q32.32 virtual time.
inline std::uint64_t dram_ceil_cycles(std::uint64_t q32) {
  return (q32 + ((std::uint64_t{1} << kDramFracBits) - 1)) >> kDramFracBits;
}

class SmSim {
 public:
  SmSim(const arch::OrinSpec& spec, const arch::Calibration& calib,
        GlobalMemory* gmem = nullptr);

  // Adds one resident thread block (its warps are distributed round-robin
  // over sub-cores). `operand_bases` maps Instr::operand indices to the
  // block's physical base addresses (addressed mode only). Throws if the
  // SM's warp limit would be exceeded.
  void add_block(const std::vector<ProgramPtr>& warps,
                 const std::array<std::uint64_t, 4>& operand_bases = {});

  int resident_warps() const { return static_cast<int>(warps_.size()); }
  bool done() const { return done_warps_ >= static_cast<int>(warps_.size()); }

  // Returns the SM to its just-constructed state while keeping the warp /
  // subcore vectors' capacity, so multi-round drivers (GpuSim::run) can
  // reuse one instance per SM slot instead of reallocating every round.
  void reset();

  // Lockstep interface for multi-SM simulation: attempts one issue per
  // sub-core at `cycle`; returns true if anything issued and lowers
  // `next_wake` to the earliest cycle a blocked candidate could go.
  bool step(std::uint64_t cycle, std::uint64_t& next_wake);

  // Finalizes and returns statistics after stepping to completion.
  SmStats finish(std::uint64_t cycles);

  // Runs until every warp has exited; returns the statistics. Throws if
  // max_cycles is exceeded (deadlock guard).
  SmStats run(std::uint64_t max_cycles = 400'000'000);

 private:
  struct WarpState {
    ProgramPtr prog;
    std::uint32_t pc = 0;
    // reg_ready[r]: cycle the last scheduled write of register r lands.
    // In-order WAW gating makes each entry monotone over the run.
    std::vector<std::uint64_t> reg_ready;
    // Running max over every scheduled writeback. Because entries are
    // monotone, this equals max(reg_ready) at all times — the O(1)
    // answer to the EXIT drain that used to scan the whole scoreboard.
    std::uint64_t max_reg_ready = 0;
    // Bit r set while register r may still have an outstanding write
    // (reg_ready[r] > the last cycle the bit was examined). Cleared
    // lazily on the next dependence check that observes the write has
    // landed; a clear bit guarantees reg_ready[r] <= current cycle, so
    // the scoreboard read is skipped entirely.
    Bitset64 pending;
    int block = 0;
    // Home sub-core and slot within it, so block-wide barrier release
    // can restore this warp's issuable bit without a search.
    std::uint32_t subcore = 0;
    std::uint32_t slot = 0;
  };
  struct Subcore {
    std::vector<int> warp_ids;
    // Slot-indexed scheduler candidate mask: bit set iff the warp is
    // neither done, waiting at a barrier, nor parked on a dependence
    // stall. The round-robin scan iterates set bits only.
    Bitset64 issuable;
    // Dependence stalls, memoized per slot. Registers are private to a
    // warp and reg_ready entries never change after the write is
    // scheduled, so a failed dependence check's dep_ready is fixed until
    // it passes: wake_at[slot] records it, and the scan skips the slot —
    // without touching the warp's state at all — while cycle < wake_at.
    // Long stalls additionally park the warp out of `issuable` into
    // `sleeping` (min_wake caches the earliest parked wake), so a scan
    // with no due sleeper never even visits those slots.
    Bitset64 sleeping;
    std::vector<std::uint64_t> wake_at;
    std::uint64_t min_wake = UINT64_MAX;
    std::size_t rr_cursor = 0;
    std::uint64_t int_busy_until = 0;
    std::uint64_t fp_busy_until = 0;
    std::uint64_t sfu_busy_until = 0;
    std::uint64_t tc_busy_until = 0;
  };
  struct Block {
    int num_warps = 0;
    int arrived = 0;
    // Warps of one block occupy contiguous ids [first_warp,
    // first_warp + num_warps): barrier release walks exactly them.
    int first_warp = 0;
    std::array<std::uint64_t, 4> operand_bases{};
  };

  // Attempts to issue the warp in `sc`'s slot `idx` at `cycle`; returns
  // true if it issued. Updates `next_wake` with the earliest cycle a
  // blocked candidate could become issuable.
  bool issue_slot(Subcore& sc, std::size_t idx, std::uint64_t cycle,
                  std::uint64_t& next_wake);
  // Round-robin over `sc.issuable` starting at rr_cursor.
  bool try_issue(Subcore& sc, std::uint64_t cycle, std::uint64_t& next_wake);

  const arch::OrinSpec spec_;
  const arch::Calibration calib_;
  GlobalMemory* gmem_ = nullptr;
  std::vector<WarpState> warps_;
  std::vector<Subcore> subcores_;
  std::vector<Block> blocks_;
  // Warp-id-indexed packed flags (the former per-warp bools).
  Bitset64 at_barrier_;
  Bitset64 done_;
  std::uint64_t lsu_busy_until_ = 0;
  // Next Q32.32 cycle the DRAM channel is free (per-SM share).
  std::uint64_t dram_free_q32_ = 0;
  std::uint64_t dram_q32_per_byte_ = 0;
  int done_warps_ = 0;
  SmStats stats_;
};

}  // namespace vitbit::sim
