#include "quant/int_div.h"

#include "common/check.h"
#include "common/int_math.h"

namespace vitbit::quant {

std::int64_t int_reciprocal(std::int64_t d, int frac_bits) {
  VITBIT_CHECK(d >= 1);
  VITBIT_CHECK(frac_bits >= 1 && frac_bits <= 30);
  const std::int64_t one = std::int64_t{1} << frac_bits;
  if (d == 1) return one;
  // Seed: 2^frac / 2^ceil(log2 d) — within 2x of the true reciprocal, which
  // Newton-Raphson then doubles in precision per step.
  const int lead = ilog2(static_cast<std::uint64_t>(d)) + 1;
  std::int64_t r = one >> lead;
  if (r == 0) r = 1;
  // r <- r * (2*one - d*r) / one, keeping d*r at full precision (shifting
  // it first would zero the correction for small d). Five steps cover 30
  // fraction bits from the power-of-two seed.
  for (int it = 0; it < 5; ++it) {
    const std::int64_t t = 2 * one - d * r;  // |t| <= 2^(fb+1)
    r = static_cast<std::int64_t>(
        (static_cast<__int128>(r) * t) >> frac_bits);
  }
  // Truncation leaves r within one ULP below; settle on round(one / d).
  while (d * (r + 1) <= one) ++r;
  while (d * r > one) --r;
  if (2 * (one - d * r) >= d) ++r;
  return r;
}

std::int64_t int_div_rounded(std::int64_t n, std::int64_t d) {
  VITBIT_CHECK(n >= 0);
  VITBIT_CHECK(d >= 1);
  if (n == 0) return 0;
  // Scale the reciprocal so the product keeps enough precision for n.
  constexpr int kFrac = 30;
  const std::int64_t r = int_reciprocal(d, kFrac);
  // Approximate quotient, then exact correction by at most a few steps
  // (the reciprocal is within a couple of ULPs).
  std::int64_t q = static_cast<std::int64_t>(
      (static_cast<__int128>(n) * r) >> kFrac);
  while (q * d > n) --q;
  while ((q + 1) * d <= n) ++q;
  // q = floor(n/d); round half away from zero.
  const std::int64_t rem = n - q * d;
  if (2 * rem >= d) ++q;
  return q;
}

}  // namespace vitbit::quant
