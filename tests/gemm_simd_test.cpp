// The simd engine's contract (tensor/gemm_simd.h): bit-identical to the
// gemm_ref_* triple loops at EVERY SIMD tier — avx2, sse, and the scalar
// fallback — on ragged shapes, near-overflow inputs, and every thread
// count. VITBIT_SIMD_LEVEL / set_simd_level_override make all tiers
// testable on any machine (levels above the detected one clamp), so this
// suite runs the same assertions three times and only the dispatch path
// differs. Plus the three-engine dispatcher surface: name round-trips,
// the error message listing every valid engine, and routing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/gemm_blocked.h"
#include "tensor/gemm_dispatch.h"
#include "tensor/gemm_ref.h"
#include "tensor/gemm_simd.h"
#include "tensor/simd_level.h"

namespace vitbit {
namespace {

// Forces one SIMD tier for a scope; restores the env/detected default on
// exit so a failing test can't leak its tier into later tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { set_simd_level_override(level); }
  ~ScopedSimdLevel() { clear_simd_level_override(); }
};

class ScopedEngine {
 public:
  explicit ScopedEngine(GemmEngine e) : saved_(default_gemm_engine()) {
    set_default_gemm_engine(e);
  }
  ~ScopedEngine() { set_default_gemm_engine(saved_); }

 private:
  GemmEngine saved_;
};

constexpr SimdLevel kAllLevels[] = {SimdLevel::kNone, SimdLevel::kSse,
                                    SimdLevel::kAvx2};

TEST(SimdLevel, NamesRoundTripAndErrorsListAll) {
  EXPECT_EQ(simd_level_from_string("none"), SimdLevel::kNone);
  EXPECT_EQ(simd_level_from_string("sse"), SimdLevel::kSse);
  EXPECT_EQ(simd_level_from_string("avx2"), SimdLevel::kAvx2);
  EXPECT_STREQ(simd_level_name(SimdLevel::kNone), "none");
  EXPECT_STREQ(simd_level_name(SimdLevel::kSse), "sse");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  try {
    simd_level_from_string("avx512");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(simd_level_names()),
              std::string::npos)
        << e.what();
  }
}

TEST(SimdLevel, OverrideClampsToDetected) {
  const SimdLevel detected = detected_simd_level();
  {
    ScopedSimdLevel force(SimdLevel::kNone);
    EXPECT_EQ(active_simd_level(), SimdLevel::kNone);
  }
  {
    // Asking for more than the machine has degrades, never fails.
    ScopedSimdLevel force(SimdLevel::kAvx2);
    EXPECT_EQ(active_simd_level(),
              detected < SimdLevel::kAvx2 ? detected : SimdLevel::kAvx2);
  }
}

TEST(GemmSimd, BitIdenticalOnRaggedShapesIntAtEveryTier) {
  // Shapes hitting full tiles, ragged rows, ragged columns, both, and
  // vectors — same sweep the blocked engine is held to.
  const int shapes[][3] = {{1, 1, 1},   {4, 8, 8},   {5, 3, 9},
                           {32, 16, 8}, {33, 17, 9}, {7, 1, 13},
                           {1, 64, 1},  {63, 5, 31}, {12, 100, 20}};
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force(level);
    Rng rng(21);
    for (const auto& s : shapes) {
      MatrixI32 a(s[0], s[1]), b(s[1], s[2]);
      fill_uniform(a, rng, -127, 127);
      fill_uniform(b, rng, -127, 127);
      const auto ref = gemm_ref_int(a, b);
      EXPECT_TRUE(gemm_simd_int(a, b) == ref)
          << simd_level_name(level) << " " << s[0] << "x" << s[1] << "x"
          << s[2];
    }
  }
}

TEST(GemmSimd, BitIdenticalOnRaggedShapesF32AtEveryTier) {
  const int shapes[][3] = {{1, 1, 1}, {4, 8, 8}, {33, 17, 9}, {7, 129, 11}};
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force(level);
    Rng rng(22);
    for (const auto& s : shapes) {
      MatrixF32 a(s[0], s[1]), b(s[1], s[2]);
      for (auto& v : a.flat()) v = static_cast<float>(rng.normal());
      for (auto& v : b.flat()) v = static_cast<float>(rng.normal());
      // Bit-identity, not closeness: the SIMD kernels perform the same
      // double multiply-and-add per element in the same k order.
      EXPECT_EQ(max_abs_diff(gemm_simd_f32(a, b), gemm_ref_f32(a, b)), 0.0)
          << simd_level_name(level) << " " << s[0] << "x" << s[1] << "x"
          << s[2];
    }
  }
}

TEST(GemmSimd, NearInt32MaxHeadroom) {
  // 3 * 26754^2 = 2,147,329,548 — within 155k of INT32_MAX. The int64
  // accumulator must carry these exactly at every tier, and the mixed-sign
  // variant must cancel exactly.
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force(level);
    MatrixI32 a(1, 3, 26754), b(3, 1, 26754);
    const auto c = gemm_simd_int(a, b);
    EXPECT_EQ(c.at(0, 0), 2147329548) << simd_level_name(level);
    EXPECT_TRUE(c == gemm_ref_int(a, b));
    a.at(0, 1) = -26754;
    b.at(1, 0) = 26754;
    EXPECT_TRUE(gemm_simd_int(a, b) == gemm_ref_int(a, b))
        << simd_level_name(level);
  }
}

TEST(GemmSimd, Int32OverflowThrowsLikeReferenceAtEveryTier) {
  // Four terms of 2^30 sum to 2^32 > INT32_MAX: every tier must refuse
  // exactly where the reference does.
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force(level);
    MatrixI32 a(1, 4, 1 << 15), b(4, 1, 1 << 15);
    EXPECT_THROW(gemm_simd_int(a, b), CheckError) << simd_level_name(level);
  }
}

TEST(GemmSimd, ThreadCountInvarianceAtEveryTier) {
  Rng rng(23);
  // 101 rows = several row panels plus a ragged remainder per thread.
  MatrixI32 a(101, 48), b(48, 19);
  fill_uniform(a, rng, -100, 100);
  fill_uniform(b, rng, -100, 100);
  MatrixF32 af = convert<float>(a), bf = convert<float>(b);
  const auto ref = gemm_ref_int(a, b);
  const auto ref_f = gemm_ref_f32(af, bf);
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force(level);
    EXPECT_TRUE(gemm_simd_int(a, b, nullptr) == ref)
        << simd_level_name(level) << " serial";
    for (int threads : {1, 2, 4}) {
      ThreadPool pool(threads);
      EXPECT_TRUE(gemm_simd_int(a, b, &pool) == ref)
          << simd_level_name(level) << " threads=" << threads;
      EXPECT_EQ(max_abs_diff(gemm_simd_f32(af, bf, &pool), ref_f), 0.0)
          << simd_level_name(level) << " threads=" << threads;
    }
  }
}

TEST(GemmSimd, NoneTierEqualsBlockedEngine) {
  // The bottom of the fallback chain IS the blocked engine's scalar tiles,
  // so forcing none must reproduce gemm_blocked_* exactly.
  ScopedSimdLevel force(SimdLevel::kNone);
  Rng rng(24);
  MatrixI32 a(19, 37), b(37, 23);
  fill_uniform(a, rng, -127, 127);
  fill_uniform(b, rng, -127, 127);
  EXPECT_TRUE(gemm_simd_int(a, b) == gemm_blocked_int(a, b));
}

TEST(GemmDispatch, SimdEngineNameRoundTripsAndErrorListsAll) {
  EXPECT_EQ(gemm_engine_from_string("simd"), GemmEngine::kSimd);
  EXPECT_STREQ(gemm_engine_name(GemmEngine::kSimd), "simd");
  // One error path, shared by --gemm, VITBIT_GEMM, and --engines: it must
  // name every valid engine so a typo is self-correcting.
  try {
    gemm_engine_from_string("fast");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fast"), std::string::npos) << msg;
    EXPECT_NE(msg.find(gemm_engine_names()), std::string::npos) << msg;
  }
  EXPECT_NE(std::string(gemm_engine_names()).find("simd"),
            std::string::npos);
}

TEST(GemmDispatch, SimdEngineRoutesThroughDispatcher) {
  Rng rng(25);
  MatrixI32 a(9, 33), b(33, 14);
  fill_uniform(a, rng, -50, 50);
  fill_uniform(b, rng, -50, 50);
  const auto ref = gemm_ref_int(a, b);
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel force_level(level);
    ScopedEngine e(GemmEngine::kSimd);
    EXPECT_EQ(default_gemm_engine(), GemmEngine::kSimd);
    EXPECT_TRUE(gemm_int(a, b) == ref) << simd_level_name(level);
  }
}

}  // namespace
}  // namespace vitbit
