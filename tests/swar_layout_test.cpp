#include <gtest/gtest.h>

#include "swar/layout.h"

namespace vitbit::swar {
namespace {

TEST(PaperPolicy, MatchesFigure3) {
  // Figure 3: >=9 bits -> zero-masking (1 value); 6-8 bits -> 2 values;
  // 5 bits -> 3 values; <=4 bits -> 4 values.
  EXPECT_EQ(packing_factor(16), 1);
  EXPECT_EQ(packing_factor(9), 1);
  EXPECT_EQ(packing_factor(8), 2);
  EXPECT_EQ(packing_factor(7), 2);
  EXPECT_EQ(packing_factor(6), 2);
  EXPECT_EQ(packing_factor(5), 3);
  EXPECT_EQ(packing_factor(4), 4);
  EXPECT_EQ(packing_factor(3), 4);
  EXPECT_EQ(packing_factor(2), 4);
}

TEST(PaperPolicy, FieldWidths) {
  EXPECT_EQ(paper_policy_layout(8).field_bits, 16);
  EXPECT_EQ(paper_policy_layout(5).field_bits, 10);
  EXPECT_EQ(paper_policy_layout(4).field_bits, 8);
  EXPECT_EQ(paper_policy_layout(12).field_bits, 32);
}

TEST(PaperPolicy, TopFieldAbsorbsLeftoverBits) {
  // 3 lanes x 10 bits: the top lane owns 32 - 20 = 12 bits.
  const auto l = paper_policy_layout(5);
  EXPECT_EQ(l.top_field_bits(), 12);
  const auto l2 = paper_policy_layout(8);
  EXPECT_EQ(l2.top_field_bits(), 16);
}

TEST(PaperPolicy, AllLayoutsValid) {
  for (int w = 2; w <= 16; ++w) {
    for (const auto mode :
         {LaneMode::kUnsigned, LaneMode::kOffset, LaneMode::kTopSigned}) {
      const auto l = paper_policy_layout(w, mode);
      EXPECT_TRUE(l.valid()) << "w=" << w << " " << l.to_string();
      EXPECT_GE(l.worst_case_period(), 1) << l.to_string();
    }
  }
}

TEST(Layout, ZeroPoints) {
  auto l = paper_policy_layout(8, LaneMode::kUnsigned);
  EXPECT_EQ(l.zero_point(), 0);
  EXPECT_EQ(l.scalar_zero_point(), 0);
  l = paper_policy_layout(8, LaneMode::kOffset);
  EXPECT_EQ(l.zero_point(), 128);
  EXPECT_EQ(l.scalar_zero_point(), 128);
  l = paper_policy_layout(8, LaneMode::kTopSigned);
  EXPECT_EQ(l.zero_point(), 128);
  EXPECT_EQ(l.scalar_zero_point(), 0);  // scalar stays raw signed
}

TEST(Layout, ValueRanges) {
  const auto u = paper_policy_layout(8, LaneMode::kUnsigned);
  EXPECT_EQ(u.value_min(), 0);
  EXPECT_EQ(u.value_max(), 255);
  const auto s = paper_policy_layout(8, LaneMode::kTopSigned);
  EXPECT_EQ(s.value_min(), -128);
  EXPECT_EQ(s.value_max(), 127);
}

TEST(Layout, BudgetMatchesHandDerivation) {
  // w=8, 2 lanes, 16-bit fields, top-signed mode: the binding constraint is
  // the lower (offset) lane, |sum| < 2^15 with encoded values up to 255:
  // budget = floor((2^15 - 1) / 255) = 128.
  const auto l = paper_policy_layout(8, LaneMode::kTopSigned);
  EXPECT_EQ(l.scalar_abs_budget(), 128);
  // Worst-case period: budget / max|scalar| = 128 / 128 = 1 — exactly the
  // "one full-range product fills the field" phenomenon the DESIGN.md
  // exactness analysis describes.
  EXPECT_EQ(l.worst_case_period(), 1);
}

TEST(Layout, UnsignedFullRangePeriodIsOne) {
  // w=8 unsigned: (2^16-1) / (255*255) = 1.
  const auto l = paper_policy_layout(8, LaneMode::kUnsigned);
  EXPECT_EQ(l.worst_case_period(), 1);
}

TEST(Layout, NarrowFormatsEarnGuardBits) {
  // w=6, 2 lanes of 16: offset products <= 63*63, so P = 65535/3969 = 16.
  const auto l6 = paper_policy_layout(6, LaneMode::kOffset);
  EXPECT_EQ(l6.worst_case_period(), 16 * 63 / 63);  // 16
  // w=4, 4 lanes of 8: (2^8-1)/(15*15) = 1.
  const auto l4 = paper_policy_layout(4, LaneMode::kOffset);
  EXPECT_EQ(l4.worst_case_period(), 1);
  // w=4 with only 2 lanes (16-bit fields) instead: huge periods.
  const auto g = guaranteed_layout(4, 64, LaneMode::kOffset);
  EXPECT_GE(g.worst_case_period(), 64);
  EXPECT_GE(g.num_lanes, 2);
}

TEST(Layout, GuaranteedLayoutFallsBackToOneLane) {
  // w=8 two-lane layouts have period 1; requiring a large period forces the
  // zero-masking (single-lane) layout, whose period is 2^31 / 128 / 128.
  const auto g = guaranteed_layout(8, 1 << 16, LaneMode::kTopSigned);
  EXPECT_EQ(g.num_lanes, 1);
  EXPECT_GE(g.worst_case_period(), 1 << 16);
  // An impossible request still returns the single-lane layout.
  const auto g2 = guaranteed_layout(8, std::int64_t{1} << 40,
                                    LaneMode::kTopSigned);
  EXPECT_EQ(g2.num_lanes, 1);
}

TEST(Layout, GuaranteedLayoutPrefersDensity) {
  // 2-bit values: 4 lanes of 8-bit fields give period (2^7-1)/ (3*2)... in
  // top-signed mode encoded lower lanes <= 3, scalar <= 2: ample period.
  const auto g = guaranteed_layout(2, 8, LaneMode::kTopSigned);
  EXPECT_EQ(g.num_lanes, 4);
}

TEST(Layout, InvalidConfigurationsRejected) {
  LaneLayout l;
  l.value_bits = 8;
  l.scalar_bits = 8;
  l.num_lanes = 4;
  l.field_bits = 16;  // 4*16 > 32
  EXPECT_FALSE(l.valid());
  l.num_lanes = 2;
  l.field_bits = 4;  // field narrower than values
  EXPECT_FALSE(l.valid());
}

TEST(Layout, ToStringMentionsKeyFields) {
  const auto s = paper_policy_layout(8).to_string();
  EXPECT_NE(s.find("lanes=2"), std::string::npos);
  EXPECT_NE(s.find("field=16"), std::string::npos);
}

}  // namespace
}  // namespace vitbit::swar
