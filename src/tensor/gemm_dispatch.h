// Engine dispatch for host matrix products.
//
// Every functional matrix product in the library routes through gemm_int /
// gemm_f32, which select between the reference triple loops (gemm_ref.h,
// the oracle), the blocked panel-packed engine (gemm_blocked.h), and the
// SIMD engine (gemm_simd.h, runtime-dispatched AVX2/SSE4.1 microkernels —
// the default whenever the CPU supports a vector tier). All three produce
// bit-identical results; the switch exists for A/B timing and for
// bisecting, not for accuracy trade-offs.
//
// Selection, in precedence order:
//   1. set_default_gemm_engine() — the --gemm=ref|blocked|simd CLI
//      override.
//   2. The VITBIT_GEMM environment variable ("ref", "blocked" or "simd"),
//      read once on first use; any other value throws CheckError (fail
//      loud, like a mistyped flag).
//   3. Default: simd when active_simd_level() has a vector tier
//      (tensor/simd_level.h), blocked otherwise. The simd engine itself
//      falls back to the blocked tiles when VITBIT_SIMD_LEVEL forces
//      "none", so the chain is always simd -> blocked -> ref.
#pragma once

#include <string>

#include "common/thread_pool.h"
#include "tensor/matrix.h"

namespace vitbit {

enum class GemmEngine { kRef, kBlocked, kSimd };

const char* gemm_engine_name(GemmEngine engine);
// A name from gemm_engine_names(); anything else throws CheckError listing
// every valid engine. Shared by vitbit_cli --gemm, the benches, and the
// VITBIT_GEMM environment parse, so a typo fails the same way everywhere.
GemmEngine gemm_engine_from_string(const std::string& name);
// "ref|blocked|simd" — for error messages and --help text.
const char* gemm_engine_names();

// The process-wide engine used by gemm_int / gemm_f32.
GemmEngine default_gemm_engine();
void set_default_gemm_engine(GemmEngine engine);

// C (MxN, int32) = A (MxK) * B (KxN) under the default engine. `pool`
// parallelizes the blocked and simd engines over disjoint row panels
// (byte-identical output at any thread count); the reference engine is
// always serial.
MatrixI32 gemm_int(const MatrixI32& a, const MatrixI32& b,
                   ThreadPool* pool = nullptr);

// C (MxN, float) = A (MxK) * B (KxN), double accumulation, same contract.
MatrixF32 gemm_f32(const MatrixF32& a, const MatrixF32& b,
                   ThreadPool* pool = nullptr);

}  // namespace vitbit
