// Whole-GPU simulation: every SM stepped in lockstep against a shared L2
// cache and a shared DRAM channel. This is the validation counterpart of
// the calibrated single-SM model (sim/launcher.h), replacing its static
// operand-reuse derates with real addressed hit/miss behaviour —
// bench/ext_l2_validation compares the two.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/calibration.h"
#include "arch/orin_spec.h"
#include "sim/l2_cache.h"
#include "sim/launcher.h"
#include "sim/sm_sim.h"

namespace vitbit::sim {

// Physical layout of a kernel's logical operand regions. A block at grid
// position (outer, row, col) reads operand i at
//   base[i] + outer*outer_stride[i] + row*row_stride[i] + col*col_stride[i]
// plus the per-instruction offset. The GEMM builders populate this so the
// L2 sees the real reuse topology (the A tile shared across column-blocks,
// B slices private per column-block, ...).
struct OperandGeom {
  std::uint64_t base = 0;
  std::uint64_t outer_stride = 0;
  std::uint64_t row_stride = 0;
  std::uint64_t col_stride = 0;
};

struct GridGeom {
  std::array<OperandGeom, 4> operands{};
  int row_blocks = 1;
  int col_blocks = 1;
  bool addressed = false;  // true when the builder populated addresses

  std::array<std::uint64_t, 4> block_bases(int block_idx) const;
};

struct GpuRunResult {
  std::uint64_t cycles = 0;       // makespan across SMs
  SmStats total;                  // aggregated over all SMs
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  double l2_hit_rate = 0.0;
};

class GpuSim : public GlobalMemory {
 public:
  GpuSim(const arch::OrinSpec& spec, const arch::Calibration& calib);

  // Distributes `grid_blocks` copies of the block round-robin over SMs,
  // capped at `blocks_per_sm` resident per SM; remaining blocks are
  // back-filled as residents finish — approximated here by multiple
  // rounds (each round simulated to completion, like waves, but with the
  // L2 kept warm between rounds).
  GpuRunResult run(const KernelSpec& kernel, const GridGeom& geom,
                   int blocks_per_sm);

  // GlobalMemory: shared L2 front, shared DRAM channel behind it.
  std::uint64_t access(std::uint64_t addr, std::uint32_t bytes,
                       std::uint64_t now, bool is_store) override;

 private:
  const arch::OrinSpec spec_;
  const arch::Calibration calib_;
  L2Cache l2_;
  double dram_free_ = 0.0;
};

// Occupancy-respecting whole-GPU launch using the L2 model. Returns the
// same LaunchResult shape as launch_kernel for apples-to-apples benches.
// `rf` adjusts the register budget behind the occupancy computation, the
// same as in launch_kernel.
LaunchResult launch_kernel_l2(const KernelSpec& kernel, const GridGeom& geom,
                              const arch::OrinSpec& spec,
                              const arch::Calibration& calib,
                              const arch::RfCompressConfig& rf = {});

}  // namespace vitbit::sim
