// Reference SM simulator: the pre-bit-packing scoreboard implementation,
// frozen verbatim.
//
// SmSim (sim/sm_sim.h) packs its hot state into word-aligned bitsets and
// tracks scoreboard readiness incrementally; this class keeps the original
// layout — scattered per-warp bools, a full O(num_regs) reg_ready scan on
// every EXIT drain attempt, and a linear round-robin walk over every
// resident warp including finished ones. It exists for two reasons:
//
//  * Oracle: the packed simulator must produce byte-identical SmStats on
//    every workload (tests/sim_packed_test.cpp runs both and compares).
//  * Perf gate: bench/sim_loop and the check_regression `sim_loop` gate
//    time SmSim against SmSimRef on fixed workloads, so the packed
//    rewrite's host speedup is regression-protected, not anecdotal.
//
// The one deliberate deviation from the historical code: the DRAM-channel
// virtual clock is the same Q32.32 integer accumulator as SmSim (the
// `double dram_free_` state was retired so the integer virtual-time core
// holds no FP state). Both simulators therefore model the identical
// channel, and the timed difference isolates the scoreboard/flag layout.
#pragma once

#include <array>
#include <vector>

#include "arch/calibration.h"
#include "arch/orin_spec.h"
#include "sim/program.h"
#include "sim/sm_sim.h"
#include "sim/stats.h"

namespace vitbit::sim {

class SmSimRef {
 public:
  SmSimRef(const arch::OrinSpec& spec, const arch::Calibration& calib,
           GlobalMemory* gmem = nullptr);

  void add_block(const std::vector<ProgramPtr>& warps,
                 const std::array<std::uint64_t, 4>& operand_bases = {});

  int resident_warps() const { return static_cast<int>(warps_.size()); }
  bool done() const { return done_warps_ >= static_cast<int>(warps_.size()); }

  void reset();
  bool step(std::uint64_t cycle, std::uint64_t& next_wake);
  SmStats finish(std::uint64_t cycles);
  SmStats run(std::uint64_t max_cycles = 400'000'000);

 private:
  struct WarpState {
    ProgramPtr prog;
    std::uint32_t pc = 0;
    std::vector<std::uint64_t> reg_ready;
    bool at_barrier = false;
    bool done = false;
    int block = 0;
  };
  struct Subcore {
    std::vector<int> warp_ids;
    std::size_t rr_cursor = 0;
    std::uint64_t int_busy_until = 0;
    std::uint64_t fp_busy_until = 0;
    std::uint64_t sfu_busy_until = 0;
    std::uint64_t tc_busy_until = 0;
  };
  struct Block {
    int num_warps = 0;
    int arrived = 0;
    std::array<std::uint64_t, 4> operand_bases{};
  };

  bool try_issue(Subcore& sc, std::uint64_t cycle, std::uint64_t& next_wake);

  const arch::OrinSpec spec_;
  const arch::Calibration calib_;
  GlobalMemory* gmem_ = nullptr;
  std::vector<WarpState> warps_;
  std::vector<Subcore> subcores_;
  std::vector<Block> blocks_;
  std::uint64_t lsu_busy_until_ = 0;
  // Next Q32.32 cycle the DRAM channel is free (see sim/sm_sim.h).
  std::uint64_t dram_free_q32_ = 0;
  std::uint64_t dram_q32_per_byte_ = 0;
  int done_warps_ = 0;
  SmStats stats_;
};

}  // namespace vitbit::sim
