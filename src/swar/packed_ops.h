// Functional packed elementwise operations — the arithmetic the packed
// CUDA-core kernels (Figure 7's VitBit rows) perform on lane-packed
// activation arrays. Counterpart of the timed kernels in
// trace/elementwise_traces.h; tests verify each op against its scalar
// reference.
//
// Operations run on offset-encoded or unsigned lanes (see packed_simd.h for
// why lane-wise ops need non-negative encodings). The top-signed GEMM lanes
// convert to offset lanes in one SWAR add (+Z to the top lane only).
#pragma once

#include <cstdint>
#include <span>

#include "swar/pack.h"

namespace vitbit::swar {

// Packs a value array `n = layout.num_lanes` elements per word (tail padded
// with zeros). Values must fit the layout's range.
std::vector<std::uint32_t> pack_array(std::span<const std::int32_t> values,
                                      const LaneLayout& layout);

// Unpacks the first `count` values.
std::vector<std::int32_t> unpack_array(std::span<const std::uint32_t> words,
                                       const LaneLayout& layout,
                                       std::size_t count);

// Lane-wise ReLU on offset-encoded lanes: max(v, 0) == max(enc, Z), which is
// a per-lane compare against the broadcast zero-point. Unsigned lanes are
// already non-negative (identity).
void packed_relu(std::span<std::uint32_t> words, const LaneLayout& layout);

// Lane-wise saturating right-shift requantization: v' = clamp(v >> shift)
// to the layout's value range. Works on offset or unsigned lanes.
void packed_requant_shift(std::span<std::uint32_t> words, int shift,
                          const LaneLayout& layout);

// Lane-wise addition of two packed arrays with saturation to the value
// range (the residual-add kernel).
void packed_add_saturate(std::span<std::uint32_t> out,
                         std::span<const std::uint32_t> a,
                         std::span<const std::uint32_t> b,
                         const LaneLayout& layout);

// Ops-per-element accounting of the packed implementations (mirrors the
// instruction counts the timing model charges).
struct PackedOpStats {
  std::int64_t words_processed = 0;
  std::int64_t lane_ops = 0;
};

}  // namespace vitbit::swar
